package multi

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/streamsum/swat/internal/stream"
)

func mustMonitor(t *testing.T, opts Options) *Monitor {
	t.Helper()
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{WindowSize: 7}); err == nil {
		t.Error("accepted non-pow2 window")
	}
	if _, err := New(Options{WindowSize: 64, Coefficients: 3}); err == nil {
		t.Error("accepted non-pow2 coefficients")
	}
	m := mustMonitor(t, Options{WindowSize: 64})
	if m.opts.Coefficients != 4 {
		t.Errorf("default coefficients = %d, want 4", m.opts.Coefficients)
	}
}

func TestAddAndAccessors(t *testing.T) {
	m := mustMonitor(t, Options{WindowSize: 32})
	if err := m.Add("cpu"); err != nil {
		t.Fatal(err)
	}
	if err := m.Add("mem"); err != nil {
		t.Fatal(err)
	}
	if err := m.Add("cpu"); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := m.Add(""); err == nil {
		t.Error("empty name accepted")
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d", m.Len())
	}
	names := m.Streams()
	if len(names) != 2 || names[0] != "cpu" || names[1] != "mem" {
		t.Errorf("Streams = %v", names)
	}
	names[0] = "hacked"
	if m.Streams()[0] != "cpu" {
		t.Error("Streams exposes internal slice")
	}
	if _, err := m.Tree("cpu"); err != nil {
		t.Error(err)
	}
	if _, err := m.Tree("nope"); err == nil {
		t.Error("Tree accepted unknown stream")
	}
}

func TestObserve(t *testing.T) {
	m := mustMonitor(t, Options{WindowSize: 16})
	if err := m.Add("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Observe("nope", 1); err == nil {
		t.Error("Observe accepted unknown stream")
	}
	for i := 0; i < 16; i++ {
		if err := m.Observe("a", float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Ready("a") {
		t.Error("stream not ready after full window")
	}
	if m.Ready("nope") {
		t.Error("unknown stream reported ready")
	}
}

func TestObserveAll(t *testing.T) {
	m := mustMonitor(t, Options{WindowSize: 16})
	for _, n := range []string{"a", "b"} {
		if err := m.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.ObserveAll([]float64{1}); err == nil {
		t.Error("accepted wrong value count")
	}
	for i := 0; i < 16; i++ {
		if err := m.ObserveAll([]float64{float64(i), float64(-i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Ready("a") || !m.Ready("b") {
		t.Error("streams not ready")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if r, err := Pearson(x, x); err != nil || math.Abs(r-1) > 1e-12 {
		t.Errorf("self correlation = %v (%v), want 1", r, err)
	}
	y := []float64{4, 3, 2, 1}
	if r, err := Pearson(x, y); err != nil || math.Abs(r+1) > 1e-12 {
		t.Errorf("anti correlation = %v (%v), want -1", r, err)
	}
	if _, err := Pearson(x, y[:2]); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("zero variance accepted")
	}
}

// Property: Pearson is symmetric and bounded by [-1, 1].
func TestQuickPearson(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(64)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		rxy, err1 := Pearson(x, y)
		ryx, err2 := Pearson(y, x)
		if err1 != nil || err2 != nil {
			return true // zero variance draws are fine to skip
		}
		return math.Abs(rxy-ryx) < 1e-12 && rxy >= -1-1e-12 && rxy <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCorrelationDetectsStructure: a stream, its noisy copy, its
// negation, and independent noise — the monitor must rank the copy
// highest, the negation strongly negative, and the noise near zero.
func TestCorrelationDetectsStructure(t *testing.T) {
	const n = 128
	m := mustMonitor(t, Options{WindowSize: n, Coefficients: 8})
	for _, name := range []string{"base", "copy", "anti", "noise"} {
		if err := m.Add(name); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(9))
	walk := stream.RandomWalk(3, 50, 4, 0, 100)
	for i := 0; i < 4*n; i++ {
		v := walk.Next()
		err := m.ObserveAll([]float64{
			v,
			v + rng.NormFloat64()*1.5,
			100 - v,
			rng.Float64() * 100,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	rCopy, err := m.Correlation("base", "copy", n)
	if err != nil {
		t.Fatal(err)
	}
	rAnti, err := m.Correlation("base", "anti", n)
	if err != nil {
		t.Fatal(err)
	}
	rNoise, err := m.Correlation("base", "noise", n)
	if err != nil {
		t.Fatal(err)
	}
	if rCopy < 0.9 {
		t.Errorf("copy correlation = %v, want > 0.9", rCopy)
	}
	if rAnti > -0.9 {
		t.Errorf("anti correlation = %v, want < -0.9", rAnti)
	}
	if math.Abs(rNoise) > 0.5 {
		t.Errorf("noise correlation = %v, want near 0", rNoise)
	}
}

// TestCorrelationApproximatesExact: the summary-based estimate must be
// close to the correlation of the raw values.
func TestCorrelationApproximatesExact(t *testing.T) {
	const n = 64
	m := mustMonitor(t, Options{WindowSize: n, Coefficients: 8})
	for _, name := range []string{"x", "y"} {
		if err := m.Add(name); err != nil {
			t.Fatal(err)
		}
	}
	wx, _ := stream.NewWindow(n)
	wy, _ := stream.NewWindow(n)
	sx := stream.RandomWalk(1, 40, 3, 0, 100)
	sy := stream.RandomWalk(2, 60, 3, 0, 100)
	for i := 0; i < 4*n; i++ {
		vx, vy := sx.Next(), sy.Next()
		if err := m.ObserveAll([]float64{vx, vy}); err != nil {
			t.Fatal(err)
		}
		wx.Push(vx)
		wy.Push(vy)
	}
	got, err := m.Correlation("x", "y", n)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Pearson(wx.Values(), wy.Values())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.25 {
		t.Errorf("summary correlation %v too far from exact %v", got, want)
	}
}

func TestCorrelationValidation(t *testing.T) {
	m := mustMonitor(t, Options{WindowSize: 16})
	if err := m.Add("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Add("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Correlation("a", "zz", 8); err == nil {
		t.Error("unknown stream accepted")
	}
	if _, err := m.Correlation("zz", "b", 8); err == nil {
		t.Error("unknown stream accepted")
	}
	if _, err := m.Correlation("a", "b", 1); err == nil {
		t.Error("span 1 accepted")
	}
	if _, err := m.Correlation("a", "b", 17); err == nil {
		t.Error("span > window accepted")
	}
	// Cold trees propagate the not-covered error.
	if _, err := m.Correlation("a", "b", 8); err == nil {
		t.Error("cold trees answered correlation")
	}
}

func TestCorrelated(t *testing.T) {
	const n = 64
	m := mustMonitor(t, Options{WindowSize: n, Coefficients: 8})
	for _, name := range []string{"s1", "s2", "s3"} {
		if err := m.Add(name); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(4))
	walk := stream.RandomWalk(5, 50, 4, 0, 100)
	for i := 0; i < 4*n; i++ {
		v := walk.Next()
		if err := m.ObserveAll([]float64{v, v + rng.NormFloat64(), rng.Float64() * 100}); err != nil {
			t.Fatal(err)
		}
	}
	pairs, err := m.Correlated(n, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].A != "s1" || pairs[0].B != "s2" {
		t.Fatalf("Correlated = %+v, want exactly (s1,s2)", pairs)
	}
	if pairs[0].R < 0.8 {
		t.Errorf("pair correlation %v below threshold", pairs[0].R)
	}
	// Threshold validation.
	if _, err := m.Correlated(n, 1.5); err == nil {
		t.Error("threshold > 1 accepted")
	}
	if _, err := m.Correlated(n, -0.1); err == nil {
		t.Error("negative threshold accepted")
	}
	// Loose threshold returns all three pairs, sorted by |r| descending.
	all, err := m.Correlated(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("Correlated(0) returned %d pairs, want 3", len(all))
	}
	for i := 1; i < len(all); i++ {
		if math.Abs(all[i].R) > math.Abs(all[i-1].R)+1e-12 {
			t.Error("pairs not sorted by |r|")
		}
	}
}

func TestCorrelatedSkipsColdStreams(t *testing.T) {
	m := mustMonitor(t, Options{WindowSize: 16})
	if err := m.Add("warm1"); err != nil {
		t.Fatal(err)
	}
	if err := m.Add("warm2"); err != nil {
		t.Fatal(err)
	}
	if err := m.Add("cold"); err != nil {
		t.Fatal(err)
	}
	walk := stream.RandomWalk(6, 50, 5, 0, 100)
	for i := 0; i < 64; i++ {
		v := walk.Next()
		if err := m.Observe("warm1", v); err != nil {
			t.Fatal(err)
		}
		if err := m.Observe("warm2", v+1); err != nil {
			t.Fatal(err)
		}
	}
	pairs, err := m.Correlated(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if p.A == "cold" || p.B == "cold" {
			t.Errorf("cold stream appears in %+v", p)
		}
	}
	if len(pairs) != 1 {
		t.Errorf("pairs = %+v, want only (warm1,warm2)", pairs)
	}
}
