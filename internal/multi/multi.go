// Package multi extends SWAT to collections of streams — the direction
// the paper's conclusion names as future work ("possible variations of
// the proposed technique in case of multiple streams ... efficient
// techniques to find correlations over multiple data streams").
//
// A Monitor maintains one k-coefficient SWAT tree per registered stream
// and estimates pairwise Pearson correlations over the most recent m
// values from the trees' reconstructed approximations alone, in the
// spirit of StatStream (Zhu & Shasha, VLDB 2002, reference [17] of the
// paper) but with SWAT's recency-biased summaries instead of per-basic-
// window DFT coefficients.
//
// Streams are sharded across GOMAXPROCS worker goroutines (each shard
// guarded by its own lock), so batched ingest and the pairwise
// correlation scan scale with cores. All Monitor methods are safe for
// concurrent use.
//
//swat:server
package multi

import (
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"github.com/streamsum/swat/internal/core"
	"github.com/streamsum/swat/internal/durable"
	"github.com/streamsum/swat/internal/query"
)

// Options configures a Monitor.
type Options struct {
	// WindowSize is N, the sliding-window size of every per-stream tree;
	// a power of two >= 4.
	WindowSize int
	// Coefficients is the per-node coefficient budget k of each tree
	// (0 means 4 — correlation estimates need more resolution than the
	// single-average default).
	Coefficients int
	// MinLevel is each tree's reduced-tree cutoff (core.Options.MinLevel):
	// levels below it are dropped and a ring of 2^(MinLevel+1) raw values
	// answers recent point queries exactly. Cluster nodes raise it so
	// scatter-gather probes against fresh ages stay exact.
	MinLevel int
	// Shards is the number of ingest/query shards streams are spread
	// over, each served by its own worker goroutine. 0 means
	// GOMAXPROCS.
	Shards int
	// DataDir, when non-empty, makes every stream durable: each stream
	// gets a WAL+checkpoint store in its own subdirectory, arrivals are
	// logged before they reach the tree, and re-Adding a stream after a
	// restart recovers its summary from disk (see Recovery).
	DataDir string
	// Durable tunes the per-stream stores (checkpoint cadence, fsync
	// policy, segment size). Ignored unless DataDir is set.
	Durable durable.Options
}

// shard owns an interleaved subset of the streams. Its mutex guards the
// trees and arrival counters of exactly those streams; its worker
// goroutine executes the shard's slice of fan-out operations.
type shard struct {
	mu      sync.Mutex
	idx     int   // position in Monitor.shards
	streams []int // indices into Monitor.trees, in registration order
	jobs    chan func()
	// batchBuf gathers one stream's column out of a row batch; reused
	// across ObserveAllBatch calls.
	batchBuf []float64
}

// Monitor tracks many streams and answers correlation queries over
// their summaries. Methods are safe for concurrent use; Close must be
// called when the monitor is no longer needed to stop its shard
// workers.
type Monitor struct {
	opts Options

	// reg guards the registration tables (names/trees/shard membership)
	// against Add and Close; ingest and query paths hold it read-side.
	reg    sync.RWMutex
	names  []string
	byName map[string]int
	trees  []*core.Tree

	// stores and recovered parallel trees when DataDir is set; stores is
	// nil in the purely in-memory mode. A stream's store is guarded by
	// the same shard lock as its tree.
	stores    []*durable.Store
	recovered []durable.RecoveryInfo

	arrived []int64
	shards  []*shard
	closed  bool
	wg      sync.WaitGroup
}

// New creates an empty monitor and starts its shard workers.
func New(opts Options) (*Monitor, error) {
	if opts.Coefficients == 0 {
		opts.Coefficients = 4
	}
	if opts.Shards <= 0 {
		opts.Shards = runtime.GOMAXPROCS(0)
	}
	// Validate eagerly by constructing a probe tree.
	if _, err := core.New(core.Options{WindowSize: opts.WindowSize, Coefficients: opts.Coefficients, MinLevel: opts.MinLevel}); err != nil {
		return nil, err
	}
	m := &Monitor{
		opts:   opts,
		byName: make(map[string]int),
		shards: make([]*shard, opts.Shards),
	}
	for i := range m.shards {
		s := &shard{idx: i, jobs: make(chan func())}
		m.shards[i] = s
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for job := range s.jobs {
				job()
			}
		}()
	}
	return m, nil
}

// Close stops the shard workers and, in durable mode, flushes every
// stream's store (final checkpoint + WAL sync) before returning the
// joined flush errors. The monitor must not be used after Close; Close
// is idempotent.
func (m *Monitor) Close() error {
	m.reg.Lock()
	if m.closed {
		m.reg.Unlock()
		return nil
	}
	m.closed = true
	for _, s := range m.shards {
		close(s.jobs)
	}
	stores := m.stores
	m.reg.Unlock()
	m.wg.Wait()
	var errs []error
	for i, st := range stores {
		if err := st.Close(); err != nil {
			errs = append(errs, fmt.Errorf("stream %q: %w", m.names[i], err))
		}
	}
	return errors.Join(errs...)
}

// shardOf returns the shard owning stream index idx.
func (m *Monitor) shardOf(idx int) *shard {
	return m.shards[idx%len(m.shards)]
}

// Add registers a new stream under a unique name.
func (m *Monitor) Add(name string) error {
	if name == "" {
		return fmt.Errorf("multi: empty stream name")
	}
	m.reg.Lock()
	defer m.reg.Unlock()
	if m.closed {
		return fmt.Errorf("multi: monitor closed")
	}
	if _, dup := m.byName[name]; dup {
		return fmt.Errorf("multi: stream %q already registered", name)
	}
	tree, err := core.New(core.Options{WindowSize: m.opts.WindowSize, Coefficients: m.opts.Coefficients, MinLevel: m.opts.MinLevel})
	if err != nil {
		return err
	}
	var (
		st   *durable.Store
		info durable.RecoveryInfo
	)
	if m.opts.DataDir != "" {
		st, err = durable.Open(filepath.Join(m.opts.DataDir, streamDir(name)), tree, m.opts.Durable)
		if err != nil {
			return fmt.Errorf("multi: stream %q: %w", name, err)
		}
		info = st.Recovery()
	}
	idx := len(m.names)
	m.byName[name] = idx
	m.names = append(m.names, name)
	m.trees = append(m.trees, tree)
	if m.opts.DataDir != "" {
		m.stores = append(m.stores, st)
		m.recovered = append(m.recovered, info)
	}
	m.arrived = append(m.arrived, int64(info.Arrivals))
	s := m.shardOf(idx)
	s.streams = append(s.streams, idx)
	return nil
}

// streamDir maps an arbitrary stream name to a filesystem-safe
// directory name: bytes outside [A-Za-z0-9_-] become %XX, and the "s-"
// prefix keeps names like ".." or ".hidden" from meaning anything to
// the filesystem. The mapping is injective, so distinct streams never
// share a store.
func streamDir(name string) string {
	const hexdigits = "0123456789ABCDEF"
	out := []byte("s-")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
			out = append(out, c)
		default:
			out = append(out, '%', hexdigits[c>>4], hexdigits[c&0xf])
		}
	}
	return string(out)
}

// Recovery reports what the named stream recovered from disk when it
// was Added: the restored arrival count, the snapshot used, how much
// WAL tail was replayed, and whether a damaged tail was truncated. The
// zero RecoveryInfo is returned for streams in a non-durable monitor.
func (m *Monitor) Recovery(name string) (durable.RecoveryInfo, error) {
	m.reg.RLock()
	defer m.reg.RUnlock()
	idx, ok := m.byName[name]
	if !ok {
		return durable.RecoveryInfo{}, fmt.Errorf("multi: unknown stream %q", name)
	}
	if m.stores == nil {
		return durable.RecoveryInfo{}, nil
	}
	return m.recovered[idx], nil
}

// Streams returns the registered stream names in registration order.
func (m *Monitor) Streams() []string {
	m.reg.RLock()
	defer m.reg.RUnlock()
	return append([]string(nil), m.names...)
}

// Len returns the number of registered streams.
func (m *Monitor) Len() int {
	m.reg.RLock()
	defer m.reg.RUnlock()
	return len(m.names)
}

// Observe appends the next value of the named stream.
func (m *Monitor) Observe(name string, v float64) error {
	m.reg.RLock()
	defer m.reg.RUnlock()
	idx, ok := m.byName[name]
	if !ok {
		return fmt.Errorf("multi: unknown stream %q", name)
	}
	s := m.shardOf(idx)
	s.mu.Lock()
	defer s.mu.Unlock()
	if m.stores != nil {
		if err := m.stores[idx].Append1(v); err != nil {
			return fmt.Errorf("multi: stream %q: %w", name, err)
		}
	} else {
		m.trees[idx].Update(v)
	}
	m.arrived[idx]++
	return nil
}

// ObserveBatch appends a run of consecutive values to the named stream
// in one locked pass over its shard, using the tree's batched update.
func (m *Monitor) ObserveBatch(name string, vs []float64) error {
	m.reg.RLock()
	defer m.reg.RUnlock()
	idx, ok := m.byName[name]
	if !ok {
		return fmt.Errorf("multi: unknown stream %q", name)
	}
	s := m.shardOf(idx)
	s.mu.Lock()
	defer s.mu.Unlock()
	return m.ingestLocked(idx, vs)
}

// StreamRef is a pre-resolved handle to one registered stream: the
// name→index lookup (and its error path) is paid once in Ref, so the
// per-batch ingest path is just two lock acquisitions and the tree's
// batched update. Streams are never removed from a monitor, so a ref
// stays valid for the monitor's lifetime. The zero StreamRef is
// invalid; obtain refs from Ref.
type StreamRef struct {
	m   *Monitor
	idx int
}

// Ref resolves a registered stream name to a reusable handle for
// repeated ingest (the line-rate path wire servers and loaders use).
func (m *Monitor) Ref(name string) (StreamRef, error) {
	m.reg.RLock()
	defer m.reg.RUnlock()
	idx, ok := m.byName[name]
	if !ok {
		return StreamRef{}, fmt.Errorf("multi: unknown stream %q", name)
	}
	return StreamRef{m: m, idx: idx}, nil
}

// Name returns the stream's registered name.
func (r StreamRef) Name() string {
	r.m.reg.RLock()
	defer r.m.reg.RUnlock()
	return r.m.names[r.idx]
}

// Observe appends the next value of the referenced stream, skipping
// the per-call name lookup of Monitor.Observe.
//
//swat:noalloc
func (r StreamRef) Observe(v float64) error {
	m := r.m
	m.reg.RLock()
	defer m.reg.RUnlock()
	s := m.shardOf(r.idx)
	s.mu.Lock()
	defer s.mu.Unlock()
	if m.stores != nil {
		if err := m.stores[r.idx].Append1(v); err != nil {
			return fmt.Errorf("multi: stream %q: %w", m.names[r.idx], err)
		}
		m.arrived[r.idx]++
		return nil
	}
	m.trees[r.idx].Update(v)
	m.arrived[r.idx]++
	return nil
}

// ObserveBatch appends a run of consecutive values to the referenced
// stream, like Monitor.ObserveBatch without the name lookup: on the
// in-memory path the batch goes straight into the tree's batched
// update with no allocation.
//
//swat:noalloc
func (r StreamRef) ObserveBatch(vs []float64) error {
	m := r.m
	m.reg.RLock()
	defer m.reg.RUnlock()
	s := m.shardOf(r.idx)
	s.mu.Lock()
	defer s.mu.Unlock()
	return m.ingestLocked(r.idx, vs)
}

// Arrived reports how many values the referenced stream has absorbed.
func (r StreamRef) Arrived() int64 {
	m := r.m
	m.reg.RLock()
	defer m.reg.RUnlock()
	s := m.shardOf(r.idx)
	s.mu.Lock()
	defer s.mu.Unlock()
	return m.arrived[r.idx]
}

// ingestLocked applies one stream's run of values, write-ahead logging
// it first in durable mode. The caller holds the stream's shard lock.
func (m *Monitor) ingestLocked(idx int, vs []float64) error {
	if m.stores != nil {
		if err := m.stores[idx].Append(vs); err != nil {
			return fmt.Errorf("multi: stream %q: %w", m.names[idx], err)
		}
	} else {
		m.trees[idx].UpdateBatch(vs)
	}
	m.arrived[idx] += int64(len(vs))
	return nil
}

// ObserveAll appends one synchronized value per stream, in registration
// order. Values must match the number of registered streams.
func (m *Monitor) ObserveAll(values []float64) error {
	m.reg.RLock()
	defer m.reg.RUnlock()
	if len(values) != len(m.names) {
		return fmt.Errorf("multi: %d values for %d streams", len(values), len(m.names))
	}
	// A single row per stream is too little work to amortize a fan-out;
	// walk the shards inline under their locks.
	var errs []error
	for _, s := range m.shards {
		s.mu.Lock()
		for _, idx := range s.streams {
			if m.stores != nil {
				if err := m.stores[idx].Append1(values[idx]); err != nil {
					errs = append(errs, fmt.Errorf("multi: stream %q: %w", m.names[idx], err))
					continue
				}
			} else {
				m.trees[idx].Update(values[idx])
			}
			m.arrived[idx]++
		}
		s.mu.Unlock()
	}
	return errors.Join(errs...)
}

// ObserveAllBatch appends a sequence of synchronized arrival rows:
// rows[t][i] is the value of stream i (registration order) at batch
// position t. Every row must have one value per registered stream. The
// rows are ingested by the shard workers in parallel, each stream
// consuming its column through the tree's batched update; the call
// returns once every shard has finished, with all streams advanced by
// len(rows) arrivals.
func (m *Monitor) ObserveAllBatch(rows [][]float64) error {
	m.reg.RLock()
	defer m.reg.RUnlock()
	if m.closed {
		return fmt.Errorf("multi: monitor closed")
	}
	for t, row := range rows {
		if len(row) != len(m.names) {
			return fmt.Errorf("multi: row %d has %d values for %d streams", t, len(row), len(m.names))
		}
	}
	if len(rows) == 0 || len(m.names) == 0 {
		return nil
	}
	errs := make([]error, len(m.shards))
	m.fanout(func(s *shard) {
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, idx := range s.streams {
			col := s.batchBuf[:0]
			for _, row := range rows {
				col = append(col, row[idx])
			}
			s.batchBuf = col
			if err := m.ingestLocked(idx, col); err != nil {
				errs[s.idx] = err
				return
			}
		}
	})
	return errors.Join(errs...)
}

// fanout runs fn once per non-empty shard on the shard workers and
// waits for completion. With a single shard the job runs inline.
// Callers must hold m.reg read-side (workers are alive while it is
// held, since Close takes it write-side).
func (m *Monitor) fanout(fn func(*shard)) {
	if len(m.shards) == 1 {
		fn(m.shards[0])
		return
	}
	var wg sync.WaitGroup
	for _, s := range m.shards {
		if len(s.streams) == 0 {
			continue
		}
		s := s
		wg.Add(1)
		s.jobs <- func() {
			defer wg.Done()
			fn(s)
		}
	}
	wg.Wait()
}

// Ready reports whether the named stream's tree has warmed up.
func (m *Monitor) Ready(name string) bool {
	m.reg.RLock()
	defer m.reg.RUnlock()
	idx, ok := m.byName[name]
	if !ok {
		return false
	}
	s := m.shardOf(idx)
	s.mu.Lock()
	defer s.mu.Unlock()
	return m.trees[idx].Ready()
}

// Answer is one stream's response to a fan-out query.
type Answer struct {
	// Stream is the stream's registered name.
	Stream string
	// Value is the stream's answer; meaningful only when Err is nil.
	Value float64
	// Err reports why the stream could not answer (typically a cold
	// tree, *core.ErrNotCovered).
	Err error
}

// QueryAll evaluates one inner-product query against every registered
// stream, fanning the evaluation across the shard workers in parallel,
// and returns the answers in registration order. Trees synchronize
// reads internally (see core's reader/writer discipline), so QueryAll
// does not take the shard ingest locks: queries proceed concurrently
// with Observe/ObserveBatch/ObserveAllBatch on the same shards.
// Per-stream failures (e.g. a stream that has not warmed up) are
// reported in the answer's Err, not as a call error.
func (m *Monitor) QueryAll(q query.Query) ([]Answer, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	m.reg.RLock()
	defer m.reg.RUnlock()
	if m.closed {
		return nil, fmt.Errorf("multi: monitor closed")
	}
	out := make([]Answer, len(m.names))
	if len(out) == 0 {
		return out, nil
	}
	m.fanout(func(s *shard) {
		for _, idx := range s.streams {
			out[idx].Stream = m.names[idx]
			out[idx].Value, out[idx].Err = m.trees[idx].InnerProduct(q.Ages, q.Weights)
		}
	})
	return out, nil
}

// Tree exposes a stream's summary tree for direct queries. The tree
// synchronizes reads and writes internally, so querying it (including
// via compiled plans) is safe concurrently with monitor ingest; do not
// Update it directly, which would bypass the monitor's arrival
// accounting.
func (m *Monitor) Tree(name string) (*core.Tree, error) {
	m.reg.RLock()
	defer m.reg.RUnlock()
	idx, ok := m.byName[name]
	if !ok {
		return nil, fmt.Errorf("multi: unknown stream %q", name)
	}
	return m.trees[idx], nil
}

// approxRecent reconstructs the last span values of stream idx under
// its shard lock.
func (m *Monitor) approxRecent(idx, span int) ([]float64, error) {
	ages := make([]int, span)
	for i := range ages {
		ages[i] = i
	}
	s := m.shardOf(idx)
	s.mu.Lock()
	defer s.mu.Unlock()
	return m.trees[idx].Approximate(ages)
}

// Correlation estimates the Pearson correlation between two streams
// over their most recent span values, computed entirely from the SWAT
// summaries. span must satisfy 2 <= span <= WindowSize.
func (m *Monitor) Correlation(a, b string, span int) (float64, error) {
	m.reg.RLock()
	defer m.reg.RUnlock()
	ia, ok := m.byName[a]
	if !ok {
		return 0, fmt.Errorf("multi: unknown stream %q", a)
	}
	ib, ok := m.byName[b]
	if !ok {
		return 0, fmt.Errorf("multi: unknown stream %q", b)
	}
	if span < 2 || span > m.opts.WindowSize {
		return 0, fmt.Errorf("multi: span %d out of [2,%d]", span, m.opts.WindowSize)
	}
	va, err := m.approxRecent(ia, span)
	if err != nil {
		return 0, fmt.Errorf("multi: stream %q: %w", a, err)
	}
	vb, err := m.approxRecent(ib, span)
	if err != nil {
		return 0, fmt.Errorf("multi: stream %q: %w", b, err)
	}
	return Pearson(va, vb)
}

// Pair is one correlated stream pair.
type Pair struct {
	A, B string
	// R is the estimated Pearson correlation.
	R float64
}

// Correlated returns all stream pairs whose estimated correlation over
// the given span meets |r| >= threshold, strongest first. Streams whose
// summaries are not yet warm are skipped. Both phases run in parallel:
// the shard workers reconstruct their streams' recent values
// concurrently, and the O(S²) pairwise scan is striped across
// GOMAXPROCS goroutines.
func (m *Monitor) Correlated(span int, threshold float64) ([]Pair, error) {
	if threshold < 0 || threshold > 1 {
		return nil, fmt.Errorf("multi: threshold %v out of [0,1]", threshold)
	}
	m.reg.RLock()
	// Reconstruct each warm stream once: O(S·span) work total, spread
	// over the shard workers.
	recon := make([][]float64, len(m.names))
	errs := make([]error, len(m.shards))
	m.fanout(func(s *shard) {
		s.mu.Lock()
		defer s.mu.Unlock()
		ages := make([]int, span)
		for i := range ages {
			ages[i] = i
		}
		for _, idx := range s.streams {
			if !m.trees[idx].Ready() {
				continue
			}
			v, err := m.trees[idx].Approximate(ages)
			if err != nil {
				errs[s.idx] = err
				return
			}
			recon[idx] = v
		}
	})
	names := m.names
	m.reg.RUnlock()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := scanPairs(names, recon, threshold)
	sort.Slice(out, func(x, y int) bool {
		ax, ay := math.Abs(out[x].R), math.Abs(out[y].R)
		if ax != ay {
			return ax > ay
		}
		if out[x].A != out[y].A {
			return out[x].A < out[y].A
		}
		return out[x].B < out[y].B
	})
	return out, nil
}

// scanPairs computes the pairwise correlation matrix over the
// reconstructed streams, striping the outer loop across GOMAXPROCS
// goroutines. Pairs with undefined correlation (constant
// reconstruction) are skipped, matching Pearson's error cases.
func scanPairs(names []string, recon [][]float64, threshold float64) []Pair {
	n := len(names)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 32 {
		return scanPairRows(names, recon, threshold, 0, 1)
	}
	parts := make([][]Pair, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			parts[w] = scanPairRows(names, recon, threshold, w, workers)
		}()
	}
	wg.Wait()
	var out []Pair
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// scanPairRows scans rows offset, offset+stride, ... of the upper
// triangle of the correlation matrix.
func scanPairRows(names []string, recon [][]float64, threshold float64, offset, stride int) []Pair {
	var out []Pair
	for i := offset; i < len(names); i += stride {
		if recon[i] == nil {
			continue
		}
		for j := i + 1; j < len(names); j++ {
			if recon[j] == nil {
				continue
			}
			r, err := Pearson(recon[i], recon[j])
			if err != nil {
				continue // constant reconstruction: undefined correlation
			}
			if math.Abs(r) >= threshold {
				out = append(out, Pair{A: names[i], B: names[j], R: r})
			}
		}
	}
	return out
}

// Pearson computes the Pearson correlation coefficient of two
// equal-length vectors. It returns an error for undefined cases
// (length < 2 or zero variance).
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("multi: vectors of lengths %d and %d", len(x), len(y))
	}
	n := float64(len(x))
	if len(x) < 2 {
		return 0, fmt.Errorf("multi: need at least 2 samples")
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0, fmt.Errorf("multi: zero variance")
	}
	return cov / math.Sqrt(vx*vy), nil
}
