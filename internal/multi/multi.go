// Package multi extends SWAT to collections of streams — the direction
// the paper's conclusion names as future work ("possible variations of
// the proposed technique in case of multiple streams ... efficient
// techniques to find correlations over multiple data streams").
//
// A Monitor maintains one k-coefficient SWAT tree per registered stream
// and estimates pairwise Pearson correlations over the most recent m
// values from the trees' reconstructed approximations alone, in the
// spirit of StatStream (Zhu & Shasha, VLDB 2002, reference [17] of the
// paper) but with SWAT's recency-biased summaries instead of per-basic-
// window DFT coefficients.
package multi

import (
	"fmt"
	"math"
	"sort"

	"github.com/streamsum/swat/internal/core"
)

// Options configures a Monitor.
type Options struct {
	// WindowSize is N, the sliding-window size of every per-stream tree;
	// a power of two >= 4.
	WindowSize int
	// Coefficients is the per-node coefficient budget k of each tree
	// (0 means 4 — correlation estimates need more resolution than the
	// single-average default).
	Coefficients int
}

// Monitor tracks many streams and answers correlation queries over
// their summaries.
type Monitor struct {
	opts    Options
	names   []string
	byName  map[string]int
	trees   []*core.Tree
	arrived []int64
}

// New creates an empty monitor.
func New(opts Options) (*Monitor, error) {
	if opts.Coefficients == 0 {
		opts.Coefficients = 4
	}
	// Validate eagerly by constructing a probe tree.
	if _, err := core.New(core.Options{WindowSize: opts.WindowSize, Coefficients: opts.Coefficients}); err != nil {
		return nil, err
	}
	return &Monitor{
		opts:   opts,
		byName: make(map[string]int),
	}, nil
}

// Add registers a new stream under a unique name.
func (m *Monitor) Add(name string) error {
	if name == "" {
		return fmt.Errorf("multi: empty stream name")
	}
	if _, dup := m.byName[name]; dup {
		return fmt.Errorf("multi: stream %q already registered", name)
	}
	tree, err := core.New(core.Options{WindowSize: m.opts.WindowSize, Coefficients: m.opts.Coefficients})
	if err != nil {
		return err
	}
	m.byName[name] = len(m.names)
	m.names = append(m.names, name)
	m.trees = append(m.trees, tree)
	m.arrived = append(m.arrived, 0)
	return nil
}

// Streams returns the registered stream names in registration order.
func (m *Monitor) Streams() []string {
	return append([]string(nil), m.names...)
}

// Len returns the number of registered streams.
func (m *Monitor) Len() int { return len(m.names) }

// Observe appends the next value of the named stream.
func (m *Monitor) Observe(name string, v float64) error {
	idx, ok := m.byName[name]
	if !ok {
		return fmt.Errorf("multi: unknown stream %q", name)
	}
	m.trees[idx].Update(v)
	m.arrived[idx]++
	return nil
}

// ObserveAll appends one synchronized value per stream, in registration
// order. Values must match the number of registered streams.
func (m *Monitor) ObserveAll(values []float64) error {
	if len(values) != len(m.names) {
		return fmt.Errorf("multi: %d values for %d streams", len(values), len(m.names))
	}
	for i, v := range values {
		m.trees[i].Update(v)
		m.arrived[i]++
	}
	return nil
}

// Ready reports whether the named stream's tree has warmed up.
func (m *Monitor) Ready(name string) bool {
	idx, ok := m.byName[name]
	return ok && m.trees[idx].Ready()
}

// Tree exposes a stream's summary tree for direct queries.
func (m *Monitor) Tree(name string) (*core.Tree, error) {
	idx, ok := m.byName[name]
	if !ok {
		return nil, fmt.Errorf("multi: unknown stream %q", name)
	}
	return m.trees[idx], nil
}

// approxRecent reconstructs the last span values of a stream from its
// summary.
func (m *Monitor) approxRecent(idx, span int) ([]float64, error) {
	ages := make([]int, span)
	for i := range ages {
		ages[i] = i
	}
	return m.trees[idx].Approximate(ages)
}

// Correlation estimates the Pearson correlation between two streams
// over their most recent span values, computed entirely from the SWAT
// summaries. span must satisfy 2 <= span <= WindowSize.
func (m *Monitor) Correlation(a, b string, span int) (float64, error) {
	ia, ok := m.byName[a]
	if !ok {
		return 0, fmt.Errorf("multi: unknown stream %q", a)
	}
	ib, ok := m.byName[b]
	if !ok {
		return 0, fmt.Errorf("multi: unknown stream %q", b)
	}
	if span < 2 || span > m.opts.WindowSize {
		return 0, fmt.Errorf("multi: span %d out of [2,%d]", span, m.opts.WindowSize)
	}
	va, err := m.approxRecent(ia, span)
	if err != nil {
		return 0, fmt.Errorf("multi: stream %q: %w", a, err)
	}
	vb, err := m.approxRecent(ib, span)
	if err != nil {
		return 0, fmt.Errorf("multi: stream %q: %w", b, err)
	}
	return Pearson(va, vb)
}

// Pair is one correlated stream pair.
type Pair struct {
	A, B string
	// R is the estimated Pearson correlation.
	R float64
}

// Correlated returns all stream pairs whose estimated correlation over
// the given span meets |r| >= threshold, strongest first. Streams whose
// summaries are not yet warm are skipped.
func (m *Monitor) Correlated(span int, threshold float64) ([]Pair, error) {
	if threshold < 0 || threshold > 1 {
		return nil, fmt.Errorf("multi: threshold %v out of [0,1]", threshold)
	}
	// Reconstruct each warm stream once: O(S·span) instead of O(S²·span).
	recon := make([][]float64, len(m.names))
	for i := range m.names {
		if !m.trees[i].Ready() {
			continue
		}
		v, err := m.approxRecent(i, span)
		if err != nil {
			return nil, err
		}
		recon[i] = v
	}
	var out []Pair
	for i := 0; i < len(m.names); i++ {
		if recon[i] == nil {
			continue
		}
		for j := i + 1; j < len(m.names); j++ {
			if recon[j] == nil {
				continue
			}
			r, err := Pearson(recon[i], recon[j])
			if err != nil {
				continue // constant reconstruction: undefined correlation
			}
			if math.Abs(r) >= threshold {
				out = append(out, Pair{A: m.names[i], B: m.names[j], R: r})
			}
		}
	}
	sort.Slice(out, func(x, y int) bool {
		ax, ay := math.Abs(out[x].R), math.Abs(out[y].R)
		if ax != ay {
			return ax > ay
		}
		if out[x].A != out[y].A {
			return out[x].A < out[y].A
		}
		return out[x].B < out[y].B
	})
	return out, nil
}

// Pearson computes the Pearson correlation coefficient of two
// equal-length vectors. It returns an error for undefined cases
// (length < 2 or zero variance).
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("multi: vectors of lengths %d and %d", len(x), len(y))
	}
	n := float64(len(x))
	if len(x) < 2 {
		return 0, fmt.Errorf("multi: need at least 2 samples")
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0, fmt.Errorf("multi: zero variance")
	}
	return cov / math.Sqrt(vx*vy), nil
}
