package multi

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"github.com/streamsum/swat/internal/query"
	"github.com/streamsum/swat/internal/stream"
)

func TestQueryAllAnswersEveryStream(t *testing.T) {
	m, err := New(Options{WindowSize: 64, Coefficients: 4, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	const streams = 10
	for i := 0; i < streams; i++ {
		if err := m.Add(fmt.Sprintf("s%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Stream i carries the constant value i, so any normalized query
	// answers exactly i.
	for step := 0; step < 200; step++ {
		row := make([]float64, streams)
		for i := range row {
			row[i] = float64(i)
		}
		if err := m.ObserveAll(row); err != nil {
			t.Fatal(err)
		}
	}
	q, err := query.New(query.Linear, 0, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wsum float64
	for _, w := range q.Weights {
		wsum += w
	}
	answers, err := m.QueryAll(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != streams {
		t.Fatalf("got %d answers for %d streams", len(answers), streams)
	}
	for i, a := range answers {
		if a.Stream != fmt.Sprintf("s%d", i) {
			t.Errorf("answer %d is for %q, want registration order", i, a.Stream)
		}
		if a.Err != nil {
			t.Errorf("stream %q: %v", a.Stream, a.Err)
			continue
		}
		if want := float64(i) * wsum; math.Abs(a.Value-want) > 1e-9 {
			t.Errorf("stream %q answered %v, want %v", a.Stream, a.Value, want)
		}
	}
}

func TestQueryAllColdStreams(t *testing.T) {
	m, err := New(Options{WindowSize: 64, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Add("warm"); err != nil {
		t.Fatal(err)
	}
	if err := m.Add("cold"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := m.ObserveBatch("warm", []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	q, err := query.New(query.Point, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := m.QueryAll(q)
	if err != nil {
		t.Fatal(err)
	}
	if answers[0].Err != nil {
		t.Errorf("warm stream errored: %v", answers[0].Err)
	}
	if answers[1].Err == nil {
		t.Error("cold stream answered without error")
	}
	// Invalid queries fail the call, not the streams.
	if _, err := m.QueryAll(query.Query{}); err == nil {
		t.Error("QueryAll accepted an empty query")
	}
	m.Close()
	if _, err := m.QueryAll(q); err == nil {
		t.Error("QueryAll succeeded on a closed monitor")
	}
}

// TestQueryAllConcurrentWithIngest exercises the serve-while-ingesting
// path under -race: queries must not block or tear while shard workers
// apply batches to the same trees.
func TestQueryAllConcurrentWithIngest(t *testing.T) {
	m, err := New(Options{WindowSize: 128, Coefficients: 4, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	const streams = 8
	for i := 0; i < streams; i++ {
		if err := m.Add(fmt.Sprintf("s%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	src := stream.Uniform(11)
	warm := make([][]float64, 300)
	for t := range warm {
		warm[t] = make([]float64, streams)
		for i := range warm[t] {
			warm[t][i] = src.Next()
		}
	}
	if err := m.ObserveAllBatch(warm); err != nil {
		t.Fatal(err)
	}
	q, err := query.New(query.Exponential, 0, 16, 0)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // ingester
		defer wg.Done()
		for round := 0; round < 30; round++ {
			if err := m.ObserveAllBatch(warm[:10]); err != nil {
				t.Errorf("ObserveAllBatch: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() { // queriers
			defer wg.Done()
			for round := 0; round < 50; round++ {
				answers, err := m.QueryAll(q)
				if err != nil {
					t.Errorf("QueryAll: %v", err)
					return
				}
				for _, a := range answers {
					if a.Err != nil {
						t.Errorf("stream %q: %v", a.Stream, a.Err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
