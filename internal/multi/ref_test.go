package multi

import (
	"testing"

	"github.com/streamsum/swat/internal/query"
	"github.com/streamsum/swat/internal/stream"
)

func TestRefResolvesOnce(t *testing.T) {
	m, err := New(Options{WindowSize: 32, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, name := range []string{"a", "b"} {
		if err := m.Add(name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Ref("missing"); err == nil {
		t.Error("ref to unknown stream succeeded")
	}
	ref, err := m.Ref("b")
	if err != nil {
		t.Fatal(err)
	}
	if ref.Name() != "b" {
		t.Errorf("ref name = %q", ref.Name())
	}

	// Ref ingest must be indistinguishable from named ingest.
	src := stream.Uniform(11)
	batch := make([]float64, 16)
	for i := 0; i < 8; i++ {
		for j := range batch {
			batch[j] = src.Next()
		}
		if err := ref.ObserveBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := m.ObserveBatch("a", batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Observe(42); err != nil {
		t.Fatal(err)
	}
	if err := m.Observe("a", 42); err != nil {
		t.Fatal(err)
	}
	if got := ref.Arrived(); got != 129 {
		t.Errorf("arrived = %d, want 129", got)
	}
	q, _ := query.New(query.Exponential, 0, 8, 0)
	answers, err := m.QueryAll(q)
	if err != nil {
		t.Fatal(err)
	}
	if answers[0].Err != nil || answers[1].Err != nil {
		t.Fatalf("answers = %+v", answers)
	}
	if answers[0].Value != answers[1].Value {
		t.Errorf("ref-fed stream answers %v, name-fed %v", answers[1].Value, answers[0].Value)
	}
}

// TestRefIngestDoesNotAllocate is the AllocsPerRun cross-check for the
// //swat:noalloc annotations on StreamRef.Observe and
// StreamRef.ObserveBatch (in-memory mode).
func TestRefIngestDoesNotAllocate(t *testing.T) {
	m, err := New(Options{WindowSize: 64, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Add("s"); err != nil {
		t.Fatal(err)
	}
	ref, err := m.Ref("s")
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]float64, 32)
	for i := range batch {
		batch[i] = float64(i)
	}
	// Warm the tree past its growth phase.
	for i := 0; i < 8; i++ {
		if err := ref.ObserveBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	var fail error
	allocs := testing.AllocsPerRun(200, func() {
		if err := ref.ObserveBatch(batch); err != nil {
			fail = err
		}
		if err := ref.Observe(1.5); err != nil {
			fail = err
		}
	})
	if fail != nil {
		t.Fatal(fail)
	}
	if allocs != 0 {
		t.Errorf("ref ingest allocates %v times per cycle, want 0", allocs)
	}
}
