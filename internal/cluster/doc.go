// Package cluster shards millions of SWAT streams across a fleet of
// swatd nodes with no coordinator: placement is a pure function of a
// seeded consistent-hash ring every client computes identically, so
// adding a node moves only the keys that land on its virtual points
// and nothing else has to agree on anything.
//
// Ingest buckets each batch by its stream's owner and ships it as
// pipelined wire-v2 stream data frames over per-node connection pools
// (wire.BinPool), so aggregate throughput scales near-linearly with
// node count. Reads are parallel scatter-gather with per-node
// deadlines. Cluster-wide roll-ups fetch each stream's canonical SWSM
// summary and fold them into one local tree via the PR-7 merge
// algebra; a node that cannot answer inside its deadline contributes a
// core.UnknownSummary stand-in instead — the midpoint of the declared
// value range, tainted by its half-width — so a partial gather returns
// a quorum answer whose bounds still cover the truth rather than an
// error or a silent under-count.
//
// Everything that affects placement or answers is deterministic
// (seeded hashing, sorted fold order for stand-ins); wall-clock reads
// exist only to arm socket deadlines.
//
//swat:deterministic
//swat:server
package cluster
