package cluster

// The coordinator-free cluster client: ring placement + per-node
// connection pools + pipelined stream-addressed ingest. One Client is
// safe for concurrent use; ingest to different nodes proceeds fully in
// parallel, ingest to one node serializes on that node's held feed
// connection (order within a stream must survive).

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/streamsum/swat/internal/core"
	"github.com/streamsum/swat/internal/wire"
)

// Config describes a fleet and the summaries it keeps.
type Config struct {
	// Nodes are the wire-v2 swatd addresses (swatd -streams). At least
	// one of Nodes/V1Nodes must be non-empty.
	Nodes []string
	// V1Nodes are legacy JSON-protocol nodes kept in the ring for
	// mixed-fleet rollouts. A v1 node folds every stream placed on it
	// into its single tree, so per-stream reads against it are exact
	// only while it owns one stream, and it cannot serve summaries:
	// its streams always enter roll-ups as widened stand-ins.
	V1Nodes []string

	// WindowSize, Coefficients, MinLevel fix the per-stream tree
	// geometry — every node must run the same (core.Options semantics).
	// The client needs it locally to synthesize stand-in summaries for
	// unreachable shards.
	WindowSize   int
	Coefficients int
	MinLevel     int

	// ValueLo/ValueHi declare the per-value range, required to widen
	// bounds for unreachable shards and skewed merges
	// (core.MergeOptions semantics: both zero means undeclared).
	ValueLo, ValueHi float64

	// Seed fixes ring placement and the pools' retry jitter. Every
	// client of one fleet must use the same seed. Default 1.
	Seed int64
	// VNodes is the virtual-point count per node (default
	// DefaultVNodes).
	VNodes int
	// ConnsPerNode bounds each node pool's idle connections (default
	// 2): one held for pipelined ingest, the rest serving concurrent
	// reads.
	ConnsPerNode int
	// Timeout is the per-node deadline scatter-gather reads arm
	// (default 2s).
	Timeout time.Duration
	// Quorum is how many summary-capable nodes must answer for a
	// gather to succeed (default: a majority of them).
	Quorum int
}

// Batch is one stream's run of consecutive values.
type Batch struct {
	Stream string
	Values []float64
}

// node is one fleet member's connection state.
type node struct {
	addr string
	v1   bool
	pool *wire.BinPool // v2 only

	// mu guards the held ingest connection (feed / v1c): stream order
	// must survive, so one writer at a time per node.
	mu   sync.Mutex
	feed *wire.BinClient
	v1c  *wire.Client
}

// placement is one consistent view of the fleet: the ring and the node
// handles it routes to, swapped as a unit. Readers load it once per
// operation so a concurrent Rebalance can never hand them a new ring
// over old pools (or vice versa); node objects are shared between
// consecutive placements for retained members, so held feed connections
// and pool statistics survive a reshard.
type placement struct {
	ring  *Ring
	nodes map[string]*node
	order []string // sorted node addresses, for deterministic walks
}

// Client shards streams across the fleet. Create with New, release
// with Close.
type Client struct {
	cfg   Config
	opts  core.Options
	mopts core.MergeOptions

	// pl is the current placement; Rebalance swaps it atomically at
	// cutover.
	pl atomic.Pointer[placement]

	// regMu guards the stream registry: every stream ever ingested and
	// how many values were handed to the wire for it (the roll-up
	// stand-in target for shards that stop answering).
	regMu sync.Mutex
	sent  map[string]int64

	// migMu serializes Rebalance calls; progress under it is published
	// through mig for Stats.
	migMu sync.Mutex
	mig   atomic.Pointer[migProgress]
}

// New validates the config and builds the ring and pools. No
// connections are opened until traffic flows.
func New(cfg Config) (*Client, error) {
	opts := core.Options{WindowSize: cfg.WindowSize, Coefficients: cfg.Coefficients, MinLevel: cfg.MinLevel}
	if _, err := core.New(opts); err != nil {
		return nil, fmt.Errorf("cluster: geometry: %w", err)
	}
	mopts := core.MergeOptions{ValueLo: cfg.ValueLo, ValueHi: cfg.ValueHi}
	all := make([]string, 0, len(cfg.Nodes)+len(cfg.V1Nodes))
	all = append(all, cfg.Nodes...)
	all = append(all, cfg.V1Nodes...)
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	ring, err := NewRing(seed, cfg.VNodes, all)
	if err != nil {
		return nil, err
	}
	c := &Client{
		cfg:   cfg,
		opts:  opts,
		mopts: mopts,
		sent:  make(map[string]int64),
	}
	v1set := make(map[string]bool, len(cfg.V1Nodes))
	for _, a := range cfg.V1Nodes {
		v1set[a] = true
	}
	p := &placement{ring: ring, nodes: make(map[string]*node, len(all))}
	for _, a := range ring.Nodes() {
		n := &node{addr: a, v1: v1set[a]}
		if !n.v1 {
			n.pool = c.newPool(a)
		}
		p.nodes[a] = n
		p.order = append(p.order, a)
	}
	c.pl.Store(p)
	return c, nil
}

// newPool builds one node's connection pool. Per-pool jitter seeds
// derive from the ring seed and the address, so a fleet of clients
// sharing one config still desynchronizes its retry storms
// deterministically.
func (c *Client) newPool(addr string) *wire.BinPool {
	seed := c.cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &wire.BinPool{
		Addr:    addr,
		MaxIdle: c.cfg.ConnsPerNode,
		Seed:    int64(fnv1aString(seedBasis(seed), addr) | 1),
	}
}

// Ring exposes the current placement ring (e.g. for tests and
// tooling). A concurrent Rebalance may swap it; callers needing one
// consistent view across several lookups hold the returned ring.
func (c *Client) Ring() *Ring { return c.pl.Load().ring }

// Owner returns the node address a stream is placed on.
func (c *Client) Owner(stream string) string { return c.pl.Load().ring.Owner(stream) }

// Streams returns every stream this client has ingested, sorted.
func (c *Client) Streams() []string {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	out := make([]string, 0, len(c.sent))
	for s := range c.sent {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Sent returns how many values this client has shipped for a stream.
func (c *Client) Sent(stream string) int64 {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	return c.sent[stream]
}

// timeout returns the configured per-node deadline budget.
func (c *Client) timeout() time.Duration {
	if c.cfg.Timeout <= 0 {
		return 2 * time.Second
	}
	return c.cfg.Timeout
}

// deadline arms a socket deadline. The wall clock never reaches
// placement or answers — only I/O budgets.
func deadline(budget time.Duration) time.Time {
	return time.Now().Add(budget) //lint:allow seededrand socket deadlines need the wall clock; placement and answers stay deterministic
}

// quorumOf returns the configured quorum over n summary-capable nodes.
func (c *Client) quorumOf(n int) int {
	if c.cfg.Quorum > 0 {
		if c.cfg.Quorum > n {
			return n
		}
		return c.cfg.Quorum
	}
	return n/2 + 1
}

// ObserveBatch buckets the batches by owner and ships each bucket as
// pipelined stream data frames on its node's held connection, all
// buckets in parallel. Frames are write-buffered: call Sync to bound
// delivery (e.g. before a gather that must see the data). On a
// transport error the node's connection is discarded — the next call
// redials through the pool's backoff — and the error reports which
// streams' batches did not go out; values already framed count as
// sent. Batches for one stream must not be in flight from two
// ObserveBatch calls at once (stream order would be lost); distinct
// streams are safe concurrently.
func (c *Client) ObserveBatch(batches []Batch) error {
	if len(batches) == 0 {
		return nil
	}
	p := c.pl.Load()
	buckets := make(map[*node][]Batch)
	for _, b := range batches {
		if b.Stream == "" {
			return errors.New("cluster: empty stream name")
		}
		if len(b.Values) == 0 {
			continue
		}
		n := p.nodes[p.ring.Owner(b.Stream)]
		buckets[n] = append(buckets[n], b)
	}
	errs := make([]error, 0, len(buckets))
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	for _, addr := range p.order {
		n := p.nodes[addr]
		bs := buckets[n]
		if len(bs) == 0 {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.sendTo(p, n, bs); err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// ObserveStream ships one stream's batch (ObserveBatch of one).
func (c *Client) ObserveStream(stream string, vs []float64) error {
	return c.ObserveBatch([]Batch{{Stream: stream, Values: vs}})
}

// sendTo writes one node's bucket on its held connection, stamped with
// the placement's ring epoch so the server can refuse the batch if the
// fleet has moved on to a newer ring.
func (c *Client) sendTo(p *placement, n *node, batches []Batch) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.v1 {
		return c.sendV1(n, batches)
	}
	if n.feed == nil {
		feed, err := n.pool.Get()
		if err != nil {
			return fmt.Errorf("cluster: %s: %w", n.addr, err)
		}
		n.feed = feed
	}
	n.feed.SetEpoch(p.ring.Epoch())
	for i, b := range batches {
		if err := n.feed.FeedStream(b.Stream, b.Values); err != nil {
			n.pool.Discard(n.feed)
			n.feed = nil
			rest := make([]string, 0, len(batches)-i)
			for _, rb := range batches[i:] {
				rest = append(rest, rb.Stream)
			}
			return fmt.Errorf("cluster: %s: streams %v: %w", n.addr, rest, err)
		}
		c.recordSent(b.Stream, int64(len(b.Values)))
	}
	return nil
}

// sendV1 drives a legacy node over the JSON protocol: one synchronous
// round trip per value into the node's single shared tree.
func (c *Client) sendV1(n *node, batches []Batch) error {
	if n.v1c == nil {
		v1c, err := wire.Dial(n.addr)
		if err != nil {
			return fmt.Errorf("cluster: %s: %w", n.addr, err)
		}
		n.v1c = v1c
	}
	for _, b := range batches {
		for i, v := range b.Values {
			if _, err := n.v1c.Feed(v); err != nil {
				n.v1c.Close()
				n.v1c = nil
				return fmt.Errorf("cluster: %s: stream %q value %d: %w", n.addr, b.Stream, i, err)
			}
			c.recordSent(b.Stream, 1)
		}
	}
	return nil
}

func (c *Client) recordSent(stream string, nvals int64) {
	c.regMu.Lock()
	c.sent[stream] += nvals
	c.regMu.Unlock()
}

// Sync flushes every held ingest connection and pings it, bounding
// delivery of everything shipped so far: when Sync returns nil, every
// prior batch has been read by its server (under the block policy,
// also enqueued). v1 nodes are synchronous by construction.
func (c *Client) Sync() error {
	p := c.pl.Load()
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	for _, addr := range p.order {
		n := p.nodes[addr]
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.mu.Lock()
			defer n.mu.Unlock()
			if n.feed == nil {
				return
			}
			n.feed.SetDeadline(deadline(c.timeout()))
			_, err := n.feed.Ping()
			n.feed.SetDeadline(time.Time{})
			if err != nil {
				n.pool.Discard(n.feed)
				n.feed = nil
				mu.Lock()
				errs = append(errs, fmt.Errorf("cluster: %s: sync: %w", n.addr, err))
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Close releases every connection and pool. The client must not be
// used afterwards.
func (c *Client) Close() error {
	p := c.pl.Load()
	var errs []error
	for _, addr := range p.order {
		n := p.nodes[addr]
		n.mu.Lock()
		if n.feed != nil {
			if err := n.feed.Close(); err != nil {
				errs = append(errs, fmt.Errorf("cluster: %s: %w", n.addr, err))
			}
			n.feed = nil
		}
		if n.v1c != nil {
			if err := n.v1c.Close(); err != nil {
				errs = append(errs, fmt.Errorf("cluster: %s: %w", n.addr, err))
			}
			n.v1c = nil
		}
		n.mu.Unlock()
		if n.pool != nil {
			if err := n.pool.Close(); err != nil {
				errs = append(errs, fmt.Errorf("cluster: %s: %w", n.addr, err))
			}
		}
	}
	return errors.Join(errs...)
}

// PoolStats reports one node pool's connection churn.
type PoolStats struct {
	Node string
	wire.PoolStats
}

// Pools snapshots every v2 node pool's stats, sorted by address.
func (c *Client) Pools() []PoolStats {
	p := c.pl.Load()
	out := make([]PoolStats, 0, len(p.order))
	for _, addr := range p.order {
		n := p.nodes[addr]
		if n.pool == nil {
			continue
		}
		out = append(out, PoolStats{Node: addr, PoolStats: n.pool.Stats()})
	}
	return out
}
