package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/streamsum/swat/internal/core"
	"github.com/streamsum/swat/internal/multi"
	"github.com/streamsum/swat/internal/wire"
)

// testGeometry is the shared tree geometry of every test fleet.
var testGeometry = core.Options{WindowSize: 32, Coefficients: 4, MinLevel: 2}

// testNode is one running swatd-equivalent: a v2 server over a monitor,
// or a bare single-tree server for v1.
type testNode struct {
	addr string
	mon  *multi.Monitor // nil for v1 nodes
	srv  *wire.Server
	done chan error
	t    *testing.T
}

func (n *testNode) stop() {
	if n.srv == nil {
		return
	}
	if err := n.srv.Close(); err != nil {
		n.t.Errorf("close %s: %v", n.addr, err)
	}
	if err := <-n.done; err != nil {
		n.t.Errorf("serve %s: %v", n.addr, err)
	}
	n.srv = nil
	if n.mon != nil {
		if err := n.mon.Close(); err != nil {
			n.t.Errorf("monitor %s: %v", n.addr, err)
		}
		n.mon = nil
	}
}

// startTestNode starts a stream-capable (v2) node when withMonitor is
// set, else a bare v1-style single-tree node.
func startTestNode(t *testing.T, withMonitor bool) *testNode {
	t.Helper()
	srv, err := wire.NewServer(testGeometry)
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = t.Logf
	n := &testNode{srv: srv, done: make(chan error, 1), t: t}
	if withMonitor {
		mon, err := multi.New(multi.Options{
			WindowSize:   testGeometry.WindowSize,
			Coefficients: testGeometry.Coefficients,
			MinLevel:     testGeometry.MinLevel,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.UseMonitor(mon); err != nil {
			t.Fatal(err)
		}
		n.mon = mon
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n.addr = addr.String()
	go func() { n.done <- srv.Serve() }()
	t.Cleanup(n.stop)
	return n
}

// testConfig builds a client config over the given nodes with the
// shared geometry and a declared [0,100] range.
func testConfig(v2 []*testNode, v1 []*testNode) Config {
	cfg := Config{
		WindowSize:   testGeometry.WindowSize,
		Coefficients: testGeometry.Coefficients,
		MinLevel:     testGeometry.MinLevel,
		ValueLo:      0,
		ValueHi:      100,
		Seed:         7,
		Timeout:      2 * time.Second,
	}
	for _, n := range v2 {
		cfg.Nodes = append(cfg.Nodes, n.addr)
	}
	for _, n := range v1 {
		cfg.V1Nodes = append(cfg.V1Nodes, n.addr)
	}
	return cfg
}

// spreadStreams picks stream names until every node owns at least one,
// returning the names. Placement is pseudo-random; a handful of
// candidates always covers a small fleet.
func spreadStreams(t *testing.T, c *Client, want int) []string {
	t.Helper()
	owned := make(map[string]bool)
	var names []string
	for i := 0; len(names) < want || len(owned) < c.Ring().Len(); i++ {
		if i > 1000 {
			t.Fatal("placement never covered every node")
		}
		name := fmt.Sprintf("stream-%d", i)
		names = append(names, name)
		owned[c.Owner(name)] = true
	}
	return names
}

// feedRows ships count rows (one value per stream per row) and waits
// until every v2 owner applied them. Returns the per-row values,
// rows[i][j] = stream j's i-th value.
func feedRows(t *testing.T, c *Client, nodes map[string]*testNode, streams []string, count int) [][]float64 {
	t.Helper()
	rows := make([][]float64, count)
	for i := range rows {
		rows[i] = make([]float64, len(streams))
		for j := range rows[i] {
			rows[i][j] = float64((i*31 + j*17) % 101) // in [0,100]
		}
	}
	// Ship column-wise in a few batches to exercise batching.
	batches := make([]Batch, len(streams))
	for j, s := range streams {
		col := make([]float64, count)
		for i := range col {
			col[i] = rows[i][j]
		}
		batches[j] = Batch{Stream: s, Values: col}
	}
	if err := c.ObserveBatch(batches); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	// Sync bounds delivery, not application; poll the monitors.
	deadline := time.Now().Add(5 * time.Second)
	for _, s := range streams {
		n := nodes[c.Owner(s)]
		if n == nil || n.mon == nil {
			continue // v1 owner: Feed is synchronous
		}
		for {
			tr, err := n.mon.Tree(s)
			if err == nil && tr.Arrivals() == int64(count) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("stream %q stuck (err=%v)", s, err)
			}
			time.Sleep(time.Millisecond)
		}
	}
	return rows
}

// rowSums returns the per-row sum across streams.
func rowSums(rows [][]float64) []float64 {
	out := make([]float64, len(rows))
	for i, r := range rows {
		for _, v := range r {
			out[i] += v
		}
	}
	return out
}

// TestClientEndToEnd drives the full pipeline over real sockets: ring
// placement, pipelined batched ingest, per-stream bounded points, and a
// cluster-wide roll-up that answers exactly like one tree fed the
// summed stream.
func TestClientEndToEnd(t *testing.T) {
	nodes := map[string]*testNode{}
	var fleet []*testNode
	for i := 0; i < 3; i++ {
		n := startTestNode(t, true)
		nodes[n.addr] = n
		fleet = append(fleet, n)
	}
	c, err := New(testConfig(fleet, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	streams := spreadStreams(t, c, 8)
	const count = 64
	rows := feedRows(t, c, nodes, streams, count)

	if got := c.Streams(); len(got) != len(streams) {
		t.Fatalf("client registry has %d streams, want %d", len(got), len(streams))
	}
	for _, s := range streams {
		if c.Sent(s) != count {
			t.Errorf("sent(%q) = %d, want %d", s, c.Sent(s), count)
		}
	}

	// Per-stream points answer from the owner's tree.
	for _, s := range streams {
		ans := c.Point(s, 0)
		if ans.Err != nil {
			t.Fatalf("point %q: %v", s, ans.Err)
		}
		if ans.Degraded || ans.Bound != 0 {
			t.Errorf("point %q degraded on a healthy fleet: %+v", s, ans)
		}
		if ans.Arrivals != count {
			t.Errorf("point %q arrivals = %d, want %d", s, ans.Arrivals, count)
		}
		tr, err := nodes[c.Owner(s)].mon.Tree(s)
		if err != nil {
			t.Fatal(err)
		}
		v, _, err := tr.BoundedPoint(0)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Value != v {
			t.Errorf("point %q = %v, owner tree says %v", s, ans.Value, v)
		}
	}

	// PointAll covers every stream, sorted, no degradation.
	all, err := c.PointAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(streams) {
		t.Fatalf("PointAll returned %d answers, want %d", len(all), len(streams))
	}
	for i, ans := range all {
		if ans.Err != nil || ans.Degraded {
			t.Errorf("PointAll[%d] (%q) unhealthy: %+v", i, ans.Stream, ans)
		}
		if i > 0 && all[i-1].Stream >= ans.Stream {
			t.Errorf("PointAll order broken: %q before %q", all[i-1].Stream, ans.Stream)
		}
	}

	// The roll-up answers like one tree fed the per-row sums — the
	// wavelet transform is linear, and every summary is aligned, so the
	// fold is exact (zero bound).
	ru, err := c.RollUp()
	if err != nil {
		t.Fatal(err)
	}
	if len(ru.Missing) != 0 {
		t.Fatalf("healthy roll-up missing %v", ru.Missing)
	}
	if ru.Streams != len(streams) {
		t.Errorf("roll-up folded %d streams, want %d", ru.Streams, len(streams))
	}
	if ru.NodesOK != ru.NodesTotal {
		t.Errorf("roll-up nodes %d/%d, want all", ru.NodesOK, ru.NodesTotal)
	}
	twin, err := core.New(testGeometry)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rowSums(rows) {
		twin.Update(v)
	}
	for age := 0; age < 8; age++ {
		gv, gb, err := ru.Tree.BoundedPoint(age)
		if err != nil {
			t.Fatal(err)
		}
		tv, _, err := twin.BoundedPoint(age)
		if err != nil {
			t.Fatal(err)
		}
		if gb != 0 {
			t.Errorf("age %d: healthy roll-up bound = %v, want 0", age, gb)
		}
		if gv != tv {
			t.Errorf("age %d: roll-up answers %v, twin fed summed rows answers %v", age, gv, tv)
		}
	}

	// Connection churn stayed sane: one held feed + pooled readers.
	for _, ps := range c.Pools() {
		if ps.Retries != 0 {
			t.Errorf("node %s: %d retries on a healthy run", ps.Node, ps.Retries)
		}
	}
}

// TestClientPartialFailure stops one node: point queries degrade to the
// declared midpoint with half-width bounds, the roll-up folds widened
// stand-ins for the dead node's streams, and both still answer within
// their (now non-zero) bounds of the fault-free twin.
func TestClientPartialFailure(t *testing.T) {
	nodes := map[string]*testNode{}
	var fleet []*testNode
	for i := 0; i < 3; i++ {
		n := startTestNode(t, true)
		nodes[n.addr] = n
		fleet = append(fleet, n)
	}
	cfg := testConfig(fleet, nil)
	cfg.Timeout = 500 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	streams := spreadStreams(t, c, 8)
	const count = 64
	rows := feedRows(t, c, nodes, streams, count)

	victim := nodes[c.Owner(streams[0])]
	var victimStreams []string
	for _, s := range streams {
		if c.Owner(s) == victim.addr {
			victimStreams = append(victimStreams, s)
		}
	}
	victim.stop()

	// Points on dead-owner streams degrade honestly.
	ans := c.Point(streams[0], 0)
	if ans.Err != nil {
		t.Fatalf("point on dead owner errored instead of degrading: %v", ans.Err)
	}
	if !ans.Degraded || ans.Value != 50 || ans.Bound != 50 {
		t.Errorf("degraded point = %+v, want midpoint 50 ± 50", ans)
	}

	all, err := c.PointAll(0)
	if err != nil {
		t.Fatalf("PointAll below-quorum error with 2 of 3 owners alive: %v", err)
	}
	for _, a := range all {
		dead := c.Owner(a.Stream) == victim.addr
		if dead != a.Degraded {
			t.Errorf("stream %q: degraded=%v, owner dead=%v", a.Stream, a.Degraded, dead)
		}
	}

	ru, err := c.RollUp()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(ru.Missing, ",") != strings.Join(victimStreams, ",") {
		t.Errorf("roll-up missing %v, want the victim's %v", ru.Missing, victimStreams)
	}
	if ru.NodesOK != ru.NodesTotal-1 {
		t.Errorf("roll-up nodes %d/%d, want one short", ru.NodesOK, ru.NodesTotal)
	}
	twin, err := core.New(testGeometry)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rowSums(rows) {
		twin.Update(v)
	}
	gv, gb, err := ru.Tree.BoundedPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	tv, _, err := twin.BoundedPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if gb <= 0 {
		t.Error("roll-up with stand-ins reports a zero bound")
	}
	if diff := gv - tv; diff > gb+1e-9 || diff < -gb-1e-9 {
		t.Errorf("roll-up answer %v strays %v from the twin's %v, beyond its bound %v", gv, diff, tv, gb)
	}

	// The failure shows up in pool stats as retries/discards.
	var churn uint64
	for _, ps := range c.Pools() {
		churn += ps.Retries + ps.Discards
	}
	if churn == 0 {
		t.Error("dead node left no trace in pool stats")
	}
}

// TestClientQuorum raises the quorum to the full fleet: with any node
// dead, gathers refuse rather than answer.
func TestClientQuorum(t *testing.T) {
	nodes := map[string]*testNode{}
	var fleet []*testNode
	for i := 0; i < 3; i++ {
		n := startTestNode(t, true)
		nodes[n.addr] = n
		fleet = append(fleet, n)
	}
	cfg := testConfig(fleet, nil)
	cfg.Timeout = 500 * time.Millisecond
	cfg.Quorum = 3
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	streams := spreadStreams(t, c, 6)
	feedRows(t, c, nodes, streams, 16)
	nodes[c.Owner(streams[0])].stop()

	if _, err := c.RollUp(); err == nil {
		t.Error("roll-up met a full-fleet quorum with a node down")
	}
	if _, err := c.PointAll(0); err == nil {
		t.Error("PointAll met a full-fleet quorum with a node down")
	}
}

// TestClientMixedFleet rings a legacy v1 JSON node alongside v2 nodes:
// ingest routes to it synchronously, its single stream answers exact
// points, and roll-ups fold its streams as widened stand-ins (a v1
// node cannot export summaries) without costing quorum.
func TestClientMixedFleet(t *testing.T) {
	v2a := startTestNode(t, true)
	v2b := startTestNode(t, true)
	v1 := startTestNode(t, false)
	nodes := map[string]*testNode{v2a.addr: v2a, v2b.addr: v2b, v1.addr: v1}
	c, err := New(testConfig([]*testNode{v2a, v2b}, []*testNode{v1}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	streams := spreadStreams(t, c, 8)
	// Keep exactly one stream on the v1 node: its single shared tree
	// only answers per-stream queries exactly in that shape.
	var kept []string
	v1Streams := 0
	for _, s := range streams {
		if c.Owner(s) == v1.addr {
			if v1Streams++; v1Streams > 1 {
				continue
			}
		}
		kept = append(kept, s)
	}
	streams = kept
	var v1Stream string
	for _, s := range streams {
		if c.Owner(s) == v1.addr {
			v1Stream = s
		}
	}
	if v1Stream == "" {
		t.Fatal("no stream placed on the v1 node")
	}

	const count = 48
	rows := feedRows(t, c, nodes, streams, count)

	// The v1 node's point is served from its shared tree.
	ans := c.Point(v1Stream, 0)
	if ans.Err != nil || ans.Degraded {
		t.Fatalf("v1 point unhealthy: %+v", ans)
	}
	if ans.Node != v1.addr {
		t.Errorf("v1 point answered by %q, want %q", ans.Node, v1.addr)
	}

	// Roll-up: v1 streams are stand-ins, quorum counts only v2 owners.
	ru, err := c.RollUp()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(ru.Missing, ",") != v1Stream {
		t.Errorf("roll-up missing %v, want only the v1 stream %q", ru.Missing, v1Stream)
	}
	if ru.NodesOK != ru.NodesTotal {
		t.Errorf("v1 node cost quorum: %d/%d", ru.NodesOK, ru.NodesTotal)
	}
	twin, err := core.New(testGeometry)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rowSums(rows) {
		twin.Update(v)
	}
	gv, gb, err := ru.Tree.BoundedPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	tv, _, err := twin.BoundedPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if gb <= 0 {
		t.Error("mixed-fleet roll-up reports a zero bound despite a stand-in")
	}
	if diff := gv - tv; diff > gb+1e-9 || diff < -gb-1e-9 {
		t.Errorf("mixed roll-up %v strays %v from twin %v, beyond bound %v", gv, diff, tv, gb)
	}
}

// TestClientValidation pins constructor errors.
func TestClientValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := New(Config{Nodes: []string{"a:1"}, WindowSize: 3}); err == nil {
		t.Error("bad geometry accepted")
	}
	c, err := New(Config{Nodes: []string{"127.0.0.1:1"}, WindowSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.ObserveStream("", []float64{1}); err == nil {
		t.Error("empty stream name accepted")
	}
	if err := c.ObserveStream("s", nil); err != nil {
		t.Errorf("empty batch should be a no-op, got %v", err)
	}
}
