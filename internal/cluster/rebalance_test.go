package cluster

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/streamsum/swat/internal/core"
	"github.com/streamsum/swat/internal/wire"
)

// movers generates extra stream names that oldRing and newRing place
// differently, with the new owner being addr — guaranteed migration
// traffic regardless of how the pseudo-random placement falls.
func movers(t *testing.T, oldRing, newRing *Ring, addr string, want int) []string {
	t.Helper()
	var names []string
	for i := 0; len(names) < want; i++ {
		if i > 100000 {
			t.Fatal("placement never moved a stream to the new node")
		}
		name := fmt.Sprintf("mover-%d", i)
		if newRing.Owner(name) == addr && oldRing.Owner(name) != addr {
			names = append(names, name)
		}
	}
	return names
}

// serverEpoch reads a node's ring epoch over a throwaway connection.
func serverEpoch(t *testing.T, addr string) uint64 {
	t.Helper()
	bc, err := wire.DialBinary(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	e, err := bc.RingEpoch()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestRebalanceAddNode grows a live fleet by one node: summaries hand
// off to the newcomer byte-identically, every node and the client end
// at the new epoch, post-migration answers are exactly the
// pre-migration ones, and a client still routing by the old ring is
// refused instead of double-counting.
func TestRebalanceAddNode(t *testing.T) {
	nodes := map[string]*testNode{}
	var fleet []*testNode
	for i := 0; i < 2; i++ {
		n := startTestNode(t, true)
		nodes[n.addr] = n
		fleet = append(fleet, n)
	}
	c, err := New(testConfig(fleet, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A stale twin of the client, built before the fleet grows.
	stale, err := New(testConfig(fleet, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()

	newcomer := startTestNode(t, true)
	nodes[newcomer.addr] = newcomer
	newRing, err := c.Ring().WithNode(newcomer.addr)
	if err != nil {
		t.Fatal(err)
	}

	// Feed a full window everywhere, including streams guaranteed to
	// move to the newcomer.
	streams := spreadStreams(t, c, 6)
	streams = append(streams, movers(t, c.Ring(), newRing, newcomer.addr, 2)...)
	const count = 64
	feedRows(t, c, nodes, streams, count)
	before, err := c.PointAll(0)
	if err != nil {
		t.Fatal(err)
	}

	report, err := c.Rebalance(newRing, RebalanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.FromEpoch != 1 || report.ToEpoch != 2 {
		t.Fatalf("epochs %d -> %d, want 1 -> 2", report.FromEpoch, report.ToEpoch)
	}
	if len(report.Moves) == 0 {
		t.Fatal("no streams moved despite guaranteed movers")
	}
	if len(report.Unfenced) != 0 {
		t.Fatalf("healthy fleet left unfenced nodes: %v", report.Unfenced)
	}
	if got := c.Ring().Epoch(); got != 2 {
		t.Fatalf("client ring epoch = %d, want 2", got)
	}
	for addr := range nodes {
		if e := serverEpoch(t, addr); e != 2 {
			t.Fatalf("node %s at epoch %d after cutover, want 2", addr, e)
		}
	}

	// Handoff correctness: each moved stream's state on its new owner
	// is byte-identical to the old owner's, with no double count.
	for _, mv := range report.Moves {
		if mv.Cold {
			t.Fatalf("move %+v went cold on a healthy fleet", mv)
		}
		src, dst := nodes[mv.From].mon, nodes[mv.To].mon
		srcTree, err := src.Tree(mv.Stream)
		if err != nil {
			t.Fatal(err)
		}
		dstTree, err := dst.Tree(mv.Stream)
		if err != nil {
			t.Fatalf("moved stream %q missing on new owner: %v", mv.Stream, err)
		}
		if !bytes.Equal(srcTree.AppendSummary(nil), dstTree.AppendSummary(nil)) {
			t.Fatalf("moved stream %q not byte-identical across the handoff", mv.Stream)
		}
		if got := dstTree.Arrivals(); got != count {
			t.Fatalf("moved stream %q has %d arrivals on new owner, want %d", mv.Stream, got, count)
		}
	}

	// Post-migration reads route by the new ring and answer exactly as
	// before the reshard.
	after, err := c.PointAll(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i].Err != nil || after[i].Err != nil {
			t.Fatalf("answer error: before=%v after=%v", before[i].Err, after[i].Err)
		}
		if before[i].Value != after[i].Value || after[i].Bound != 0 {
			t.Fatalf("stream %q answered %v±%v after migration, want exactly %v",
				after[i].Stream, after[i].Value, after[i].Bound, before[i].Value)
		}
	}

	// The stale twin still routes by epoch 1: its writes to a moved
	// stream's old owner are refused (never silently double-counted)
	// and its reads are told the placement is stale.
	mv := report.Moves[0]
	oldTree, err := nodes[mv.From].mon.Tree(mv.Stream)
	if err != nil {
		t.Fatal(err)
	}
	arrivalsBefore := oldTree.Arrivals()
	if err := stale.ObserveStream(mv.Stream, []float64{50, 50, 50}); err != nil {
		t.Fatal(err) // one-way: the refusal surfaces on the next sync
	}
	if err := stale.Sync(); err == nil {
		t.Fatal("stale client's sync succeeded over a refused connection")
	}
	time.Sleep(20 * time.Millisecond)
	if got := oldTree.Arrivals(); got != arrivalsBefore {
		t.Fatalf("stale write applied on old owner: arrivals %d -> %d", arrivalsBefore, got)
	}
	if ans := stale.Point(mv.Stream, 0); ans.Err == nil || !strings.Contains(ans.Err.Error(), "epoch") {
		t.Fatalf("stale read: %+v, want an epoch refusal", ans)
	}

	// Stats reflect the settled state.
	st := c.Stats()
	if st.Epoch != 2 || st.Migrating || len(st.Nodes) != 3 || len(st.Pools) != 3 {
		t.Fatalf("stats after migration: %+v", st)
	}
}

// TestRebalanceRemoveNode drains a member out of the fleet: its
// streams hand off, the flip retires its pool, and answers stay exact
// even after the node is gone.
func TestRebalanceRemoveNode(t *testing.T) {
	nodes := map[string]*testNode{}
	var fleet []*testNode
	for i := 0; i < 3; i++ {
		n := startTestNode(t, true)
		nodes[n.addr] = n
		fleet = append(fleet, n)
	}
	c, err := New(testConfig(fleet, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	streams := spreadStreams(t, c, 8)
	const count = 64
	rows := feedRows(t, c, nodes, streams, count)
	before, err := c.PointAll(0)
	if err != nil {
		t.Fatal(err)
	}

	victim := fleet[0]
	newRing, err := c.Ring().WithoutNode(victim.addr)
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Rebalance(newRing, RebalanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, mv := range report.Moves {
		if mv.From != victim.addr {
			t.Fatalf("removal moved %q from surviving node %s", mv.Stream, mv.From)
		}
	}
	st := c.Stats()
	if st.Epoch != 2 || len(st.Nodes) != 2 {
		t.Fatalf("stats after removal: %+v", st)
	}
	for _, addr := range st.Nodes {
		if addr == victim.addr {
			t.Fatal("victim still in the placement")
		}
	}

	// The victim can die now; nothing routes to it.
	victim.stop()
	after, err := c.PointAll(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if after[i].Err != nil || after[i].Degraded {
			t.Fatalf("stream %q degraded after removal: %+v", after[i].Stream, after[i])
		}
		if before[i].Value != after[i].Value || after[i].Bound != 0 {
			t.Fatalf("stream %q answered %v±%v, want exactly %v",
				after[i].Stream, after[i].Value, after[i].Bound, before[i].Value)
		}
	}
	// And the roll-up still answers like one tree fed the summed rows.
	ru, err := c.RollUp()
	if err != nil {
		t.Fatal(err)
	}
	if len(ru.Missing) != 0 {
		t.Fatalf("post-removal roll-up missing %v", ru.Missing)
	}
	twin, err := core.New(testGeometry)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rowSums(rows) {
		twin.Update(v)
	}
	gv, gb, err := ru.Tree.BoundedPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	tv, _, err := twin.BoundedPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if gb != 0 || gv != tv {
		t.Fatalf("roll-up answers %v±%v, twin fed summed rows answers %v exactly", gv, gb, tv)
	}
}

// TestRebalanceDeadNewOwnerFailsFast pins the abort path: a target
// ring whose newcomer is unreachable fails the migration within the
// configured budget — not the pools' full retry schedule — and leaves
// the old placement fully authoritative with nothing flipped.
func TestRebalanceDeadNewOwnerFailsFast(t *testing.T) {
	nodes := map[string]*testNode{}
	var fleet []*testNode
	for i := 0; i < 2; i++ {
		n := startTestNode(t, true)
		nodes[n.addr] = n
		fleet = append(fleet, n)
	}
	c, err := New(testConfig(fleet, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A dead address: bind a port, then free it.
	ghost := startTestNode(t, true)
	ghostAddr := ghost.addr
	ghost.stop()

	newRing, err := c.Ring().WithNode(ghostAddr)
	if err != nil {
		t.Fatal(err)
	}
	streams := spreadStreams(t, c, 4)
	streams = append(streams, movers(t, c.Ring(), newRing, ghostAddr, 1)...)
	const count = 64
	feedRows(t, c, nodes, streams, count)

	start := time.Now()
	if _, err := c.Rebalance(newRing, RebalanceOptions{Timeout: 500 * time.Millisecond}); err == nil {
		t.Fatal("migration to a dead new owner succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dead new owner stalled the migration for %v", elapsed)
	}
	// Nothing flipped: epoch, placement, and answers are untouched.
	if got := c.Ring().Epoch(); got != 1 {
		t.Fatalf("client epoch %d after aborted migration, want 1", got)
	}
	// Ordinary traffic already carried epoch 1 to the servers; the
	// point is that nobody was fenced to the aborted target epoch.
	for _, n := range fleet {
		if e := serverEpoch(t, n.addr); e >= newRing.Epoch() {
			t.Fatalf("node %s fenced to %d by an aborted migration", n.addr, e)
		}
	}
	answers, err := c.PointAll(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range answers {
		if a.Err != nil || a.Degraded || a.Bound != 0 {
			t.Fatalf("answer degraded after aborted migration: %+v", a)
		}
	}
}

// TestRebalanceValidation pins the lineage checks: nil rings, foreign
// geometry, and non-advancing epochs are refused before anything
// moves.
func TestRebalanceValidation(t *testing.T) {
	n := startTestNode(t, true)
	c, err := New(testConfig([]*testNode{n}, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Rebalance(nil, RebalanceOptions{}); err == nil {
		t.Error("nil target ring accepted")
	}
	foreign, err := NewRingAt(c.Ring().Seed()+1, c.Ring().VNodes(), []string{n.addr, "x:1"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Rebalance(foreign, RebalanceOptions{}); err == nil {
		t.Error("foreign-seed ring accepted")
	}
	same, err := NewRingAt(c.Ring().Seed(), c.Ring().VNodes(), []string{n.addr, "x:1"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Rebalance(same, RebalanceOptions{}); err == nil {
		t.Error("non-advancing epoch accepted")
	}
}
