package cluster

// The consistent-hash ring. Each node projects VNodes virtual points
// onto a 64-bit circle via seeded FNV-1a; a key belongs to the node
// owning the first point at or clockwise of the key's hash. Placement
// is a pure function of (seed, node set, key): every client computes
// the same ring with no coordination, and because one node's points
// are independent of every other node's, adding or removing a node
// moves only the keys that land on (or leave) that node's arcs —
// expected VNodes·(1/N) of the keyspace, nothing else.

import (
	"errors"
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-point count per node when Config.VNodes
// is zero: enough to keep per-node load within a few percent of even
// at small fleets without making ring rebuilds noticeable.
const DefaultVNodes = 64

// ringPoint is one virtual point: a position on the hash circle and
// the node that owns the arc ending there.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring. Build one with NewRing;
// derive changed fleets with WithNode/WithoutNode. Methods are safe
// for concurrent use.
//
// Every ring carries an epoch: a monotonically increasing version of
// the membership within one derivation lineage. NewRing starts at 1;
// each WithNode/WithoutNode derivation increments it. The epoch is the
// fencing token of live resharding (see Rebalance): clients stamp it
// on stream frames and servers refuse frames from older epochs, so a
// mixed-placement window is detected instead of double-counted.
type Ring struct {
	seed   int64
	vnodes int
	epoch  uint64
	nodes  []string // sorted, unique
	points []ringPoint
}

// NewRing builds a ring over the given node addresses at epoch 1.
// Duplicates are rejected (a duplicated address would silently double
// that node's share). vnodes <= 0 means DefaultVNodes.
func NewRing(seed int64, vnodes int, nodes []string) (*Ring, error) {
	return NewRingAt(seed, vnodes, nodes, 1)
}

// NewRingAt builds a ring at an explicit epoch. Use it to reconstruct
// a ring whose lineage advanced in another process (an operator who
// knows the fleet is at epoch N builds the matching ring directly).
// Epoch 0 is reserved as "unversioned" on the wire and rejected here.
func NewRingAt(seed int64, vnodes int, nodes []string, epoch uint64) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, errors.New("cluster: ring needs at least one node")
	}
	if epoch == 0 {
		return nil, errors.New("cluster: ring epoch 0 is reserved for unversioned frames")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i, n := range sorted {
		if n == "" {
			return nil, errors.New("cluster: empty node address")
		}
		if i > 0 && sorted[i-1] == n {
			return nil, fmt.Errorf("cluster: duplicate node %q", n)
		}
	}
	r := &Ring{seed: seed, vnodes: vnodes, epoch: epoch, nodes: sorted}
	r.rebuild()
	return r, nil
}

// fmix64 is the 64-bit avalanche finalizer (murmur3's): every input
// bit flips about half the output bits. FNV-1a alone fails here — two
// virtual-point indices differing in a low bit yield hashes differing
// by a small multiple of the FNV prime, so one node's points clump in
// a narrow arc and the ring degenerates to one effective point per
// node. Finalizing spreads them uniformly.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// rebuild recomputes the sorted point array from the node set.
func (r *Ring) rebuild() {
	r.points = make([]ringPoint, 0, len(r.nodes)*r.vnodes)
	for _, n := range r.nodes {
		base := fnv1aString(seedBasis(r.seed), n)
		for i := 0; i < r.vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: fmix64(mixIndex(base, uint32(i))), node: n})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash collisions across nodes resolve by name so every client
		// breaks the tie identically.
		return r.points[a].node < r.points[b].node
	})
}

// Nodes returns the member addresses, sorted.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Epoch returns the ring's membership version.
func (r *Ring) Epoch() uint64 { return r.epoch }

// Seed returns the placement seed shared by every ring in a lineage.
func (r *Ring) Seed() int64 { return r.seed }

// VNodes returns the virtual-point count per node.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner maps a stream key to the node that owns it.
func (r *Ring) Owner(key string) string {
	h := fmix64(fnv1aString(seedBasis(r.seed), key))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point to the circle's start
	}
	return r.points[i].node
}

// WithNode derives the ring with one more member at epoch+1. The
// receiver is unchanged.
func (r *Ring) WithNode(node string) (*Ring, error) {
	return NewRingAt(r.seed, r.vnodes, append(r.Nodes(), node), r.epoch+1)
}

// WithoutNode derives the ring with one member removed at epoch+1.
// The receiver is unchanged.
func (r *Ring) WithoutNode(node string) (*Ring, error) {
	kept := make([]string, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n != node {
			kept = append(kept, n)
		}
	}
	if len(kept) == len(r.nodes) {
		return nil, fmt.Errorf("cluster: node %q not in ring", node)
	}
	return NewRingAt(r.seed, r.vnodes, kept, r.epoch+1)
}

// FNV-1a, seeded by folding the seed's bytes in before the payload.
// Chosen over maphash for one property maphash explicitly refuses to
// give: stability across processes and runs, which is what makes the
// ring coordinator-free.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// seedBasis folds the ring seed into the FNV basis.
func seedBasis(seed int64) uint64 {
	h := uint64(fnvOffset)
	u := uint64(seed)
	for i := 0; i < 8; i++ {
		h ^= (u >> (8 * i)) & 0xFF
		h *= fnvPrime
	}
	return h
}

// fnv1aString folds s into h.
func fnv1aString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// mixIndex folds a virtual-point index into a node's base hash.
func mixIndex(h uint64, i uint32) uint64 {
	for b := 0; b < 4; b++ {
		h ^= uint64((i >> (8 * b)) & 0xFF)
		h *= fnvPrime
	}
	return h
}
