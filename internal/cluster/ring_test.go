package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// ringKeys generates deterministic pseudo-stream names.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("stream-%d", i)
	}
	return keys
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(1, 0, nil); err == nil {
		t.Error("empty node set accepted")
	}
	if _, err := NewRing(1, 0, []string{"a", ""}); err == nil {
		t.Error("empty address accepted")
	}
	if _, err := NewRing(1, 0, []string{"a", "b", "a"}); err == nil {
		t.Error("duplicate address accepted")
	}
	r, err := NewRing(1, 0, []string{"b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Nodes(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Nodes() = %v, want sorted [a b]", got)
	}
	if r.Len() != 2 {
		t.Errorf("Len() = %d, want 2", r.Len())
	}
	if _, err := r.WithoutNode("zzz"); err == nil {
		t.Error("WithoutNode of a non-member succeeded")
	}
}

// TestRingPlacementDeterminism pins the coordinator-free property: two
// rings built independently from the same (seed, vnodes, node set) —
// in any input order — place every key identically, and a different
// seed places differently.
func TestRingPlacementDeterminism(t *testing.T) {
	nodes := []string{"10.0.0.1:7070", "10.0.0.2:7070", "10.0.0.3:7070", "10.0.0.4:7070"}
	shuffled := []string{"10.0.0.3:7070", "10.0.0.1:7070", "10.0.0.4:7070", "10.0.0.2:7070"}
	r1, err := NewRing(42, 64, nodes)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(42, 64, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := NewRing(43, 64, nodes)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for _, k := range ringKeys(2000) {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("key %q: placement depends on input order (%q vs %q)", k, r1.Owner(k), r2.Owner(k))
		}
		if r1.Owner(k) != r3.Owner(k) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("changing the seed changed no placement; the seed is inert")
	}
}

// TestRingMinimalMovement property-tests the consistency guarantee:
// adding a node moves only keys that land on the new node (expected
// ~1/(N+1), asserted under 2/(N+1)), removing one moves only keys that
// were on it — everything else stays put.
func TestRingMinimalMovement(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	keys := ringKeys(4000)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6) // fleets of 2..7
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("node-%d-%d:7070", trial, i)
		}
		r, err := NewRing(rng.Int63(), 64, nodes)
		if err != nil {
			t.Fatal(err)
		}
		before := make(map[string]string, len(keys))
		for _, k := range keys {
			before[k] = r.Owner(k)
		}

		newcomer := fmt.Sprintf("node-%d-new:7070", trial)
		grown, err := r.WithNode(newcomer)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range keys {
			after := grown.Owner(k)
			if after == before[k] {
				continue
			}
			if after != newcomer {
				t.Fatalf("trial %d: key %q moved %q → %q, neither the newcomer; movement is not minimal",
					trial, k, before[k], after)
			}
			moved++
		}
		if limit := 2 * len(keys) / (n + 1); moved > limit {
			t.Errorf("trial %d: add moved %d of %d keys, over the 2/(N+1) limit %d", trial, moved, len(keys), limit)
		}
		if moved == 0 {
			t.Errorf("trial %d: the new node received no keys", trial)
		}

		victim := nodes[rng.Intn(n)]
		shrunk, err := r.WithoutNode(victim)
		if err != nil {
			t.Fatal(err)
		}
		moved = 0
		for _, k := range keys {
			after := shrunk.Owner(k)
			if after == before[k] {
				continue
			}
			if before[k] != victim {
				t.Fatalf("trial %d: key %q on surviving node %q moved to %q; movement is not minimal",
					trial, k, before[k], after)
			}
			moved++
		}
		if limit := 2 * len(keys) / n; moved > limit {
			t.Errorf("trial %d: remove moved %d of %d keys, over the 2/N limit %d", trial, moved, len(keys), limit)
		}
	}
}

// TestRingLoadEvenness bounds placement skew. A node's load share is
// its total arc length, whose relative spread shrinks like 1/√vnodes —
// about ±12% (1σ) at the default 64 points — so the assertion is a
// share-ratio band, not a per-key sampling statistic (χ² would grow
// without bound in the key count here). The band catches structural
// clumping — the un-finalized FNV ring put 1.8× the even share on one
// node — while leaving ~4σ of honest headroom.
func TestRingLoadEvenness(t *testing.T) {
	keys := ringKeys(20000)
	for _, n := range []int{2, 3, 5, 8} {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("node-%d:7070", i)
		}
		r, err := NewRing(7, DefaultVNodes, nodes)
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[string]int, n)
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		expected := float64(len(keys)) / float64(n)
		for _, node := range nodes {
			share := float64(counts[node]) / expected
			if share < 0.55 || share > 1.45 {
				t.Errorf("fleet of %d: node %q holds %.2f× the even share (counts %v)", n, node, share, counts)
			}
		}
	}
}

// TestRingEpochLineage property-tests the versioning invariants that
// live resharding fences on: NewRing starts at epoch 1, epoch 0 is
// unconstructible (reserved as "unversioned" on the wire), and every
// WithNode/WithoutNode derivation increments the epoch by exactly one
// while leaving the receiver untouched — a random walk of membership
// changes yields a strictly increasing epoch sequence.
func TestRingEpochLineage(t *testing.T) {
	if _, err := NewRingAt(1, 0, []string{"a:1"}, 0); err == nil {
		t.Fatal("epoch 0 accepted; it is reserved for unversioned frames")
	}
	r, err := NewRing(3, 16, []string{"n0:1", "n1:1"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != 1 {
		t.Fatalf("NewRing epoch = %d, want 1", r.Epoch())
	}
	rng := rand.New(rand.NewSource(17))
	next := 2
	for step := 0; step < 40; step++ {
		before := r.Epoch()
		var derived *Ring
		if r.Len() > 1 && rng.Intn(2) == 0 {
			derived, err = r.WithoutNode(r.Nodes()[rng.Intn(r.Len())])
		} else {
			derived, err = r.WithNode(fmt.Sprintf("extra-%d:1", step))
		}
		if err != nil {
			t.Fatal(err)
		}
		if r.Epoch() != before {
			t.Fatalf("step %d: derivation mutated the receiver's epoch (%d -> %d)", step, before, r.Epoch())
		}
		if got := derived.Epoch(); got != before+1 {
			t.Fatalf("step %d: derived epoch = %d, want strict increment %d", step, got, before+1)
		}
		if got := derived.Epoch(); got != uint64(next) {
			t.Fatalf("step %d: epoch sequence broke: %d, want %d", step, got, next)
		}
		next++
		r = derived
	}
}

// TestRingEqualEpochBitIdentical pins the coordinator-free equality
// property the epoch protocol leans on: two rings constructed from the
// same (seed, vnodes, node set, epoch) — whether built directly or
// reached by derivation — are identical in every field, virtual points
// included, so any two clients that agree on the lineage agree on the
// whole placement.
func TestRingEqualEpochBitIdentical(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1"}
	r1, err := NewRingAt(9, 32, nodes, 5)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRingAt(9, 32, []string{"c:1", "a:1", "b:1"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("equal-epoch rings from permuted inputs differ")
	}
	base, err := NewRingAt(9, 32, []string{"a:1", "b:1", "c:1", "d:1"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	derived, err := base.WithoutNode("d:1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(derived, r1) {
		t.Fatal("derived ring differs from the directly built ring at the same epoch")
	}
}

// TestRingOwnerWraps pins the circle semantics: a key hashing past the
// highest virtual point belongs to the lowest one. Exercised
// implicitly above; here the derived rings must also agree with rings
// built from scratch.
func TestRingDerivedEqualsRebuilt(t *testing.T) {
	r, err := NewRing(5, 32, []string{"a:1", "b:1", "c:1"})
	if err != nil {
		t.Fatal(err)
	}
	grown, err := r.WithNode("d:1")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewRing(5, 32, []string{"a:1", "b:1", "c:1", "d:1"})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ringKeys(1000) {
		if grown.Owner(k) != fresh.Owner(k) {
			t.Fatalf("key %q: derived ring places on %q, rebuilt ring on %q", k, grown.Owner(k), fresh.Owner(k))
		}
	}
}
