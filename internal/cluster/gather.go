package cluster

// Scatter-gather reads. Point queries fan out to each stream's owner
// with per-node deadlines; cluster-wide roll-ups fetch per-stream SWSM
// summaries and fold them into one local tree as responses arrive.
// Partial failure never silently narrows an answer: an unreachable
// shard degrades to the declared range's midpoint with a bound of its
// half-width (point queries) or a core.UnknownSummary stand-in whose
// taint widens every downstream bound (roll-ups), and a gather that
// loses more than the quorum's worth of nodes reports an error instead
// of an answer.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/streamsum/swat/internal/core"
	"github.com/streamsum/swat/internal/wire"
)

// PointAnswer is one stream's bounded point answer.
type PointAnswer struct {
	Stream string
	// Value and Bound: |Value − truth| <= Bound under the declared
	// value range (Bound is 0 for a healthy, merge-free shard).
	Value float64
	Bound float64
	// Arrivals is the owning shard's arrival count for the stream; 0
	// for degraded answers.
	Arrivals int64
	// Node is the owner that answered; "" for degraded answers.
	Node string
	// Degraded marks a stand-in answer (owner unreachable): the
	// declared range's midpoint, bounded by its half-width.
	Degraded bool
	// Err is set when no answer was possible at all — the owner
	// refused (e.g. cold tree) or it is unreachable and no value range
	// is declared to degrade into.
	Err error
}

// errNoRange reports a degraded answer was impossible.
var errNoRange = errors.New("cluster: owner unreachable and no ValueLo/ValueHi declared to widen into")

// degradedAnswer builds the stand-in for an unreachable owner.
func (c *Client) degradedAnswer(stream string, cause error) PointAnswer {
	if !c.mopts.Declared() {
		return PointAnswer{Stream: stream, Err: fmt.Errorf("%w (%v)", errNoRange, cause)}
	}
	return PointAnswer{
		Stream:   stream,
		Value:    (c.cfg.ValueLo + c.cfg.ValueHi) / 2,
		Bound:    (c.cfg.ValueHi - c.cfg.ValueLo) / 2,
		Degraded: true,
	}
}

// Point answers a bounded point query for one stream from its owner.
// An unreachable owner degrades to the declared range's midpoint and
// half-width bound rather than failing; a reachable owner that refuses
// (cold tree, unknown stream) surfaces its error.
func (c *Client) Point(stream string, age int) PointAnswer {
	p := c.pl.Load()
	n := p.nodes[p.ring.Owner(stream)]
	if n.v1 {
		return c.pointV1(n, stream, age)
	}
	var out PointAnswer
	err := n.pool.Do(func(bc *wire.BinClient) error {
		bc.SetEpoch(p.ring.Epoch())
		bc.SetDeadline(deadline(c.timeout()))
		defer bc.SetDeadline(time.Time{})
		var e error
		out.Value, out.Bound, out.Arrivals, e = bc.StreamPoint(stream, age)
		return e
	})
	if err != nil {
		var remote *wire.RemoteError
		if errors.As(err, &remote) {
			return PointAnswer{Stream: stream, Node: n.addr, Err: err}
		}
		return c.degradedAnswer(stream, err)
	}
	out.Stream, out.Node = stream, n.addr
	return out
}

// pointV1 serves a point query from a legacy node's single shared
// tree: exact (zero bound) only while that node owns exactly one
// stream, which is the supported mixed-fleet shape.
func (c *Client) pointV1(n *node, stream string, age int) PointAnswer {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.v1c == nil {
		v1c, err := wire.Dial(n.addr)
		if err != nil {
			return c.degradedAnswer(stream, err)
		}
		n.v1c = v1c
	}
	v, err := n.v1c.Point(age)
	if err != nil {
		var remote *wire.RemoteError
		if errors.As(err, &remote) {
			return PointAnswer{Stream: stream, Node: n.addr, Err: err}
		}
		n.v1c.Close()
		n.v1c = nil
		return c.degradedAnswer(stream, err)
	}
	return PointAnswer{Stream: stream, Node: n.addr, Value: v}
}

// PointAll scatter-gathers one bounded point query across every
// registered stream: streams group by owner, owners are queried in
// parallel on one pooled connection each (pipelined round trips), and
// answers return in sorted stream order. Streams on unreachable owners
// come back degraded; the call errors only when fewer than a quorum of
// owners answered.
func (c *Client) PointAll(age int) ([]PointAnswer, error) {
	streams := c.Streams()
	if len(streams) == 0 {
		return nil, nil
	}
	p := c.pl.Load()
	byOwner := make(map[*node][]int)
	for i, s := range streams {
		n := p.nodes[p.ring.Owner(s)]
		byOwner[n] = append(byOwner[n], i)
	}
	out := make([]PointAnswer, len(streams))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		answered int
	)
	for _, addr := range p.order {
		n := p.nodes[addr]
		idxs := byOwner[n]
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if c.pointNode(p, n, streams, idxs, age, out) {
				mu.Lock()
				answered++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if q := c.quorumOf(len(byOwner)); answered < q {
		return out, fmt.Errorf("cluster: %d of %d owners answered, quorum is %d", answered, len(byOwner), q)
	}
	return out, nil
}

// pointNode answers one owner's slice of a PointAll, reporting whether
// the node answered. Per-stream remote refusals (cold tree) keep the
// node answered on both the v1 and v2 paths; a transport failure
// degrades the remaining streams and counts the node as unanswered.
func (c *Client) pointNode(p *placement, n *node, streams []string, idxs []int, age int, out []PointAnswer) bool {
	if n.v1 {
		for _, i := range idxs {
			out[i] = c.pointV1(n, streams[i], age)
		}
		return answeredAll(out, idxs)
	}
	err := n.pool.Do(func(bc *wire.BinClient) error {
		bc.SetEpoch(p.ring.Epoch())
		bc.SetDeadline(deadline(c.timeout()))
		defer bc.SetDeadline(time.Time{})
		for k, i := range idxs {
			v, bound, arr, e := bc.StreamPoint(streams[i], age)
			if e != nil {
				var remote *wire.RemoteError
				if errors.As(e, &remote) {
					out[i] = PointAnswer{Stream: streams[i], Node: n.addr, Err: e}
					continue
				}
				// Transport failure mid-gather: degrade this stream and
				// the rest. Do retries only if nothing was answered yet
				// (answers would duplicate otherwise); a partial gather
				// instead settles here and hands the connection back for
				// discard — a pipelined reply may still be in flight.
				if k > 0 {
					for _, j := range idxs[k:] {
						out[j] = c.degradedAnswer(streams[j], e)
					}
					return fmt.Errorf("%w: %w", wire.ErrDiscardConn, e)
				}
				return e
			}
			out[i] = PointAnswer{Stream: streams[i], Value: v, Bound: bound, Arrivals: arr, Node: n.addr}
		}
		return nil
	})
	if err != nil {
		if !errors.Is(err, wire.ErrDiscardConn) {
			for _, i := range idxs {
				out[i] = c.degradedAnswer(streams[i], err)
			}
		}
		return false
	}
	return answeredAll(out, idxs)
}

// answeredAll reports whether every indexed answer came from the node
// itself: degraded stand-ins and transport failures with no range to
// widen into count against it, per-stream remote refusals do not.
func answeredAll(out []PointAnswer, idxs []int) bool {
	for _, i := range idxs {
		if out[i].Degraded || errors.Is(out[i].Err, errNoRange) {
			return false
		}
	}
	return true
}

// RollUp is a cluster-wide merged summary: one local tree summarizing
// the sum of every registered stream, with bounds that honestly cover
// whatever the gather could not reach.
type RollUp struct {
	// Tree answers bounded queries over the cluster-wide sum
	// (BoundedPoint, BoundedInnerProduct).
	Tree *core.Tree
	// Streams counts the streams folded in, including stand-ins;
	// registered streams that never shipped a value fold nothing and
	// are not counted.
	Streams int
	// Missing lists streams represented by widened stand-ins (owner
	// unreachable, summary refused, or a v1 node that cannot export
	// summaries), sorted.
	Missing []string
	// NodesOK / NodesTotal count the summary-capable owners that
	// answered versus all summary-capable owners.
	NodesOK, NodesTotal int
}

// fetched is one stream summary in flight from a gather goroutine to
// the folding loop.
type fetched struct {
	stream string
	sum    *core.Summary
}

// RollUp fetches every registered stream's summary from its owner —
// owners in parallel, one pooled connection each — and folds them into
// one tree as they arrive, so peak memory holds one summary per node,
// not one per stream. Unreachable or refused streams fold in as
// core.UnknownSummary stand-ins sized by this client's sent count
// (their taint widens the tree's bounds); the call errors when fewer
// than a quorum of summary-capable owners answered, or when stand-ins
// are needed without a declared value range.
func (c *Client) RollUp() (*RollUp, error) {
	streams := c.Streams()
	if len(streams) == 0 {
		return nil, errors.New("cluster: no streams registered")
	}
	p := c.pl.Load()
	byOwner := make(map[*node][]string)
	v2Owners := 0
	for _, s := range streams {
		n := p.nodes[p.ring.Owner(s)]
		if _, seen := byOwner[n]; !seen && !n.v1 {
			v2Owners++
		}
		byOwner[n] = append(byOwner[n], s)
	}
	results := make(chan fetched)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		nodesOK int
	)
	for _, addr := range p.order {
		n := p.nodes[addr]
		names := byOwner[n]
		if len(names) == 0 || n.v1 {
			continue // v1 nodes cannot export summaries; stand-ins below
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if c.fetchNode(p, n, names, results) {
				mu.Lock()
				nodesOK++
				mu.Unlock()
			}
		}()
	}
	go func() { wg.Wait(); close(results) }()

	// Fold as summaries arrive. The merge algebra is bit-commutative
	// pairwise but the fold shape still follows arrival order; callers
	// needing bit-identical roll-ups across runs fold sorted summaries
	// themselves (the netsim harness does).
	var (
		tr      *core.Tree
		got     = make(map[string]bool, len(streams))
		folded  int
		foldErr error
	)
	for f := range results {
		got[f.stream] = true
		if foldErr != nil {
			continue // drain
		}
		// A summary lagging the count we shipped means the shard lost
		// arrivals (healed partition, shed batches): advance it with
		// tainted midpoints so the merged bounds admit the gap instead
		// of silently under-counting.
		if target := c.Sent(f.stream); f.sum.Arrivals < target {
			f.sum, foldErr = core.AdvanceSummary(f.sum, target, c.mopts)
			if foldErr != nil {
				continue
			}
		}
		if tr == nil {
			tr, foldErr = core.FromSummary(f.sum)
		} else {
			foldErr = tr.MergeSummary(f.sum, c.mopts)
		}
		if foldErr == nil {
			folded++
		}
	}
	if foldErr != nil {
		return nil, fmt.Errorf("cluster: fold: %w", foldErr)
	}
	if q := c.quorumOf(v2Owners); v2Owners > 0 && nodesOK < q {
		return nil, fmt.Errorf("cluster: %d of %d owners answered, quorum is %d", nodesOK, v2Owners, q)
	}

	// Stand-ins for everything the gather could not produce, in sorted
	// order for determinism. Streams with a zero sent count contributed
	// nothing, so they need no stand-in and are not missing anything.
	var missing []string
	for _, s := range streams {
		if !got[s] && c.Sent(s) > 0 {
			missing = append(missing, s)
		}
	}
	for _, s := range missing {
		target := c.Sent(s)
		sum, err := core.UnknownSummary(c.opts, 1, target, c.mopts)
		if err != nil {
			return nil, fmt.Errorf("cluster: stand-in for %q: %w", s, err)
		}
		if tr == nil {
			tr, err = core.FromSummary(sum)
		} else {
			err = tr.MergeSummary(sum, c.mopts)
		}
		if err != nil {
			return nil, fmt.Errorf("cluster: stand-in for %q: %w", s, err)
		}
		folded++
	}
	if tr == nil {
		// Everything missing with zero sent counts: an empty cluster.
		var err error
		if tr, err = core.New(c.opts); err != nil {
			return nil, err
		}
	}
	sort.Strings(missing)
	return &RollUp{
		Tree:       tr,
		Streams:    folded,
		Missing:    missing,
		NodesOK:    nodesOK,
		NodesTotal: v2Owners,
	}, nil
}

// fetchNode fetches one owner's summaries on one pooled connection,
// sending each to the folding loop as it lands. Reports whether the
// node answered (at least reachably; per-stream refusals and a partial
// delivery don't count against it).
func (c *Client) fetchNode(p *placement, n *node, names []string, results chan<- fetched) bool {
	err := n.pool.Do(func(bc *wire.BinClient) error {
		bc.SetEpoch(p.ring.Epoch())
		bc.SetDeadline(deadline(c.timeout()))
		defer bc.SetDeadline(time.Time{})
		for k, s := range names {
			sum, e := bc.FetchStreamSummary(s)
			if e != nil {
				var remote *wire.RemoteError
				if errors.As(e, &remote) {
					continue // this stream becomes a stand-in
				}
				if k > 0 {
					// Partial: delivered streams stand, the rest become
					// stand-ins; no retry (summaries would duplicate) and
					// no reuse of a connection with an abandoned reply.
					return fmt.Errorf("%w: %w", wire.ErrDiscardConn, e)
				}
				return e
			}
			results <- fetched{stream: s, sum: sum}
		}
		return nil
	})
	return err == nil || errors.Is(err, wire.ErrDiscardConn)
}
