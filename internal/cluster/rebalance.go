package cluster

// Live resharding: move a fleet from one ring to the next without
// losing a value or lying about one. The driver is deliberately
// sequential and client-mediated — no server talks to another server,
// so the protocol stays two-party and every failure mode is a failure
// of one connection the driver already knows how to retry.
//
// The state machine per moved stream is drain → export → install →
// commit; only after every move committed does the epoch flip, in two
// steps: fence every node in the union of the old and new memberships
// forward to the new epoch (so old owners refuse stale writers even if
// they never see new-epoch traffic), then swap the client's placement
// atomically. Nothing earlier mutates the old placement, so any error
// before the flip aborts with the old ring still fully authoritative:
// summaries already installed on new owners are inert (no reads or
// writes route to them under the old ring) and are either reused by a
// retried migration (the commit is idempotent under the transfer's
// identity) or left to be garbage.
//
// Transfers are chunked, checksummed, and resumable end to end: a cut
// during export resumes from the assembly's contiguous prefix under a
// CRC fence, a cut during install probes the new owner's resume token
// before writing, so completed chunks are never re-sent in either
// direction (see core/transfer.go and wire/migrate.go).
//
// Values raced into an old owner between its export and its fence are
// not transferred; they remain counted in this client's sent registry,
// so roll-ups advance the new owner's summary with tainted midpoints
// that cover exactly that gap — the never-lying degradation the rest
// of the system already provides. Callers who cannot tolerate even
// that taint quiesce ingest to moved streams around the Rebalance (the
// netsim migration harness buffers client-side and replays after the
// flip).

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/streamsum/swat/internal/core"
	"github.com/streamsum/swat/internal/wire"
)

// Rebalance chunk-size bounds, mirroring the wire server's clamp.
const (
	defaultChunkBytes = 64 << 10
	maxChunkBytes     = 256 << 10
)

// RebalanceOptions tunes one Rebalance call.
type RebalanceOptions struct {
	// Timeout caps each per-node operation — the drain ping, one
	// stream's export or install (dial, backoff, and every chunk round
	// trip included), and each fence — so a dead node fails the
	// migration fast instead of parking in the pools' full retry
	// schedule. Default: the client's configured Timeout.
	Timeout time.Duration
	// AllowCold lets the migration proceed when a moved stream's old
	// owner cannot export (crashed, unreachable, or restarted without
	// the stream): the stream starts cold on its new owner and the
	// client's sent registry keeps roll-up bounds honest about the
	// missing history. Without it any export failure aborts the
	// migration with the old ring intact.
	AllowCold bool
	// ChunkBytes bounds each transfer chunk (default 64KiB, clamped to
	// 256KiB so a chunk frame never approaches the wire's frame cap).
	ChunkBytes int
}

// Move records one stream's handoff.
type Move struct {
	Stream   string
	From, To string
	// Bytes is the summary encoding's size; Chunks counts the chunk
	// round trips the export took (more than ⌈Bytes/chunk⌉ means the
	// transfer was cut and resumed).
	Bytes  int64
	Chunks int
	// Cold marks a stream whose old owner could not export
	// (RebalanceOptions.AllowCold); nothing was installed.
	Cold bool
}

// MigrationReport is the outcome of a completed Rebalance.
type MigrationReport struct {
	FromEpoch, ToEpoch uint64
	// Moves lists every stream whose owner changed, sorted by stream.
	Moves []Move
	// Unfenced lists nodes the cutover broadcast could not reach —
	// past the point of no return the flip proceeds, and these nodes
	// adopt the epoch from the first new-epoch frame they see instead.
	// Until then an unversioned (epoch-0) writer aimed at one of them
	// would not be refused.
	Unfenced []string
}

// migProgress is a Rebalance's published mid-flight state (see Stats).
type migProgress struct {
	from, to     uint64
	moved, total int
	current      string
}

// Stats is a snapshot of the client's placement and migration state.
type Stats struct {
	// Epoch and Nodes describe the current ring.
	Epoch uint64
	Nodes []string
	// Migrating is set while a Rebalance is in flight; the remaining
	// fields then describe it.
	Migrating          bool
	FromEpoch, ToEpoch uint64
	// MovedStreams of TotalMoves streams have been handed off so far;
	// CurrentStream is the one in flight.
	MovedStreams, TotalMoves int
	CurrentStream            string
	// Pools is the per-node connection churn, sorted by address.
	Pools []PoolStats
}

// Stats snapshots the client's ring epoch, per-node pool churn, and —
// while a Rebalance is in flight — the migration's progress.
func (c *Client) Stats() Stats {
	p := c.pl.Load()
	st := Stats{Epoch: p.ring.Epoch(), Nodes: p.ring.Nodes()}
	for _, addr := range p.order {
		if n := p.nodes[addr]; n.pool != nil {
			st.Pools = append(st.Pools, PoolStats{Node: addr, PoolStats: n.pool.Stats()})
		}
	}
	if m := c.mig.Load(); m != nil {
		st.Migrating = true
		st.FromEpoch, st.ToEpoch = m.from, m.to
		st.MovedStreams, st.TotalMoves = m.moved, m.total
		st.CurrentStream = m.current
	}
	return st
}

// rebalanceTimeout returns the per-node operation budget.
func (c *Client) rebalanceTimeout(opts RebalanceOptions) time.Duration {
	if opts.Timeout > 0 {
		return opts.Timeout
	}
	return c.timeout()
}

// chunkBytes returns the clamped transfer chunk size.
func chunkBytes(opts RebalanceOptions) int {
	switch {
	case opts.ChunkBytes <= 0:
		return defaultChunkBytes
	case opts.ChunkBytes > maxChunkBytes:
		return maxChunkBytes
	default:
		return opts.ChunkBytes
	}
}

// Rebalance moves the client from its current ring to newRing: drain,
// per-moved-stream summary handoff, epoch fence broadcast, placement
// flip, in that order. newRing must extend the current ring's lineage —
// same seed and vnodes, strictly newer epoch (derive it with
// Ring.WithNode / Ring.WithoutNode). On error nothing has flipped and
// the old ring remains fully authoritative. Rebalance serializes with
// itself; ingest for streams that change owners must be quiesced around
// the call (concurrent ingest to unmoved streams and concurrent reads
// are safe — reads during the migration window answer from the old
// placement with honest bounds).
func (c *Client) Rebalance(newRing *Ring, opts RebalanceOptions) (*MigrationReport, error) {
	c.migMu.Lock()
	defer c.migMu.Unlock()
	defer c.mig.Store(nil)

	p := c.pl.Load()
	old := p.ring
	if newRing == nil {
		return nil, errors.New("cluster: nil target ring")
	}
	if newRing.Seed() != old.Seed() || newRing.VNodes() != old.VNodes() {
		return nil, fmt.Errorf("cluster: target ring geometry (seed %d, %d vnodes) does not match current (seed %d, %d vnodes)",
			newRing.Seed(), newRing.VNodes(), old.Seed(), old.VNodes())
	}
	if newRing.Epoch() <= old.Epoch() {
		return nil, fmt.Errorf("cluster: target ring epoch %d is not ahead of current epoch %d", newRing.Epoch(), old.Epoch())
	}

	// Build the new placement's nodes up front: installs push into
	// added members before anything flips, and a dead new owner must
	// fail the migration here — cheaply — not strand it half-cut-over.
	newNodes := make(map[string]*node, newRing.Len())
	newOrder := newRing.Nodes()
	var added []*node
	for _, a := range newOrder {
		if n, ok := p.nodes[a]; ok {
			newNodes[a] = n
			continue
		}
		n := &node{addr: a, pool: c.newPool(a)}
		newNodes[a] = n
		added = append(added, n)
	}
	abort := func(err error) (*MigrationReport, error) {
		for _, n := range added {
			n.pool.Close()
		}
		return nil, err
	}

	// The move set: every registered stream whose owner changes.
	var moves []Move
	for _, s := range c.Streams() { // sorted
		from, to := old.Owner(s), newRing.Owner(s)
		if from == to {
			continue
		}
		if p.nodes[from].v1 || newNodes[to].v1 {
			return abort(fmt.Errorf("cluster: stream %q moves across a v1 node (%s -> %s): drain legacy nodes before resharding", s, from, to))
		}
		moves = append(moves, Move{Stream: s, From: from, To: to})
	}
	progress := func(moved int, current string) {
		c.mig.Store(&migProgress{from: old.Epoch(), to: newRing.Epoch(), moved: moved, total: len(moves), current: current})
	}
	progress(0, "")

	// Drain: bound delivery of every batch shipped so far, so the old
	// owners' exports cover them. With AllowCold a failed drain only
	// dooms the unreachable owner's streams to cold handoff.
	if len(moves) > 0 {
		if err := c.Sync(); err != nil && !opts.AllowCold {
			return abort(fmt.Errorf("cluster: drain before reshard: %w", err))
		}
	}

	report := &MigrationReport{FromEpoch: old.Epoch(), ToEpoch: newRing.Epoch()}
	for i := range moves {
		mv := &moves[i]
		progress(i, mv.Stream)
		if err := c.moveStream(p, newNodes, mv, newRing.Epoch(), opts); err != nil {
			return abort(err)
		}
	}
	progress(len(moves), "")
	report.Moves = moves

	// Cutover, step one: fence every member of either ring forward.
	// Servers also adopt newer epochs from the first stamped frame they
	// see, so a fence miss is self-healing for nodes that still receive
	// traffic; the broadcast exists for the ones that won't — an old
	// owner that just lost its last stream must still refuse a stale
	// writer. Fence failures are reported, not fatal: every transfer
	// has committed, so the flip is the only state left to move.
	fenceSet := make(map[string]*node, len(p.order)+len(added))
	for _, a := range p.order {
		fenceSet[a] = p.nodes[a]
	}
	for _, a := range newOrder {
		fenceSet[a] = newNodes[a]
	}
	fenceOrder := make([]string, 0, len(fenceSet))
	for a := range fenceSet {
		fenceOrder = append(fenceOrder, a)
	}
	sort.Strings(fenceOrder)
	budget := c.rebalanceTimeout(opts)
	for _, a := range fenceOrder {
		n := fenceSet[a]
		if n.v1 {
			continue // v1 speaks no epochs; its streams cannot move
		}
		ctx, cancel := context.WithTimeout(context.Background(), budget)
		err := n.pool.DoCtx(ctx, func(bc *wire.BinClient) error {
			bc.SetDeadline(deadline(budget))
			defer bc.SetDeadline(time.Time{})
			_, e := bc.SetRingEpoch(newRing.Epoch())
			return e
		})
		cancel()
		if err != nil {
			report.Unfenced = append(report.Unfenced, a)
		}
	}

	// Cutover, step two: flip the client. Every operation from here on
	// routes and stamps by the new ring.
	c.pl.Store(&placement{ring: newRing, nodes: newNodes, order: newOrder})

	// Retire removed members, best-effort: a member is usually removed
	// because it is being decommissioned (or is already dead), so close
	// errors carry no signal the report doesn't.
	for _, a := range p.order {
		if _, kept := newNodes[a]; kept {
			continue
		}
		n := p.nodes[a]
		n.mu.Lock()
		if n.feed != nil {
			n.feed.Close()
			n.feed = nil
		}
		if n.v1c != nil {
			n.v1c.Close()
			n.v1c = nil
		}
		n.mu.Unlock()
		if n.pool != nil {
			n.pool.Close()
		}
	}
	return report, nil
}

// moveStream hands one stream off: pull the old owner's summary chunk
// by chunk into a checksummed assembly, push it to the new owner under
// its resume token, commit. Both legs run under the per-op budget with
// pool dial time context-capped, and both resume across transport cuts
// without re-sending completed chunks.
func (c *Client) moveStream(p *placement, newNodes map[string]*node, mv *Move, toEpoch uint64, opts RebalanceOptions) error {
	budget := c.rebalanceTimeout(opts)
	chunk := chunkBytes(opts)
	src, dst := p.nodes[mv.From], newNodes[mv.To]

	// Pull. The assembly outlives pool retries: a fresh connection
	// resumes at Have, fenced by the CRC — if the source's snapshot
	// changed it restarts the reply at offset zero with its new
	// identity and the assembly is reopened to match.
	var asm *core.SummaryAssembly
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	err := src.pool.DoCtx(ctx, func(bc *wire.BinClient) error {
		bc.SetDeadline(deadline(budget))
		defer bc.SetDeadline(time.Time{})
		for {
			var off int64
			var crc uint32
			if asm != nil {
				off, crc = asm.Have(), asm.CRC()
			}
			ch, err := bc.MigRead(mv.Stream, off, crc, chunk)
			if err != nil {
				return err
			}
			if asm == nil || !asm.Matches(ch.Total, ch.CRC) {
				if ch.Offset != 0 {
					return fmt.Errorf("cluster: %s: export of %q switched identity at offset %d", mv.From, mv.Stream, ch.Offset)
				}
				if asm, err = core.NewSummaryAssembly(ch.Total, ch.CRC); err != nil {
					return fmt.Errorf("cluster: %s: export of %q: %w", mv.From, mv.Stream, err)
				}
			}
			if err := asm.Append(ch.Offset, ch.Data); err != nil {
				return fmt.Errorf("cluster: %s: export of %q: %w", mv.From, mv.Stream, err)
			}
			mv.Chunks++
			if asm.Complete() {
				return nil
			}
		}
	})
	cancel()
	if err != nil {
		if opts.AllowCold {
			mv.Cold = true
			return nil
		}
		return fmt.Errorf("cluster: export %q from %s: %w", mv.Stream, mv.From, err)
	}
	xfer, err := asm.Transfer()
	if err != nil {
		return fmt.Errorf("cluster: export %q from %s: %w", mv.Stream, mv.From, err)
	}
	mv.Bytes = xfer.Len()

	// Push, then commit, on the new owner. The opening empty write is a
	// probe-with-identity: its reply's Have is the server's resume
	// token, so a push resumed after a cut (or a whole retried
	// migration) starts exactly where the server left off and never
	// re-sends an applied byte. The commit carries the migration's
	// target epoch; a server already past it refuses, which keeps a
	// stalled driver's late installs out of post-cutover state.
	ctx, cancel = context.WithTimeout(context.Background(), budget)
	err = dst.pool.DoCtx(ctx, func(bc *wire.BinClient) error {
		bc.SetDeadline(deadline(budget))
		defer bc.SetDeadline(time.Time{})
		total, crc := xfer.Len(), xfer.CRC()
		st, err := bc.MigWrite(mv.Stream, 0, total, crc, nil)
		if err != nil {
			return err
		}
		for !st.Committed && st.Have < total {
			data, err := xfer.Chunk(st.Have, chunk)
			if err != nil {
				return err
			}
			if st, err = bc.MigWrite(mv.Stream, st.Have, total, crc, data); err != nil {
				return err
			}
		}
		if st, err = bc.MigCommit(mv.Stream, total, crc, toEpoch); err != nil {
			return err
		}
		if !st.Committed {
			return fmt.Errorf("cluster: %s: commit of %q not acknowledged", mv.To, mv.Stream)
		}
		return nil
	})
	cancel()
	if err != nil {
		return fmt.Errorf("cluster: install %q on %s: %w", mv.Stream, mv.To, err)
	}
	return nil
}
