package scenario

import (
	"bytes"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"github.com/streamsum/swat/internal/core"
	"github.com/streamsum/swat/internal/netsim"
)

// migNodeID parses the NodeID back out of a shard name.
func migNodeID(t *testing.T, name string) netsim.NodeID {
	t.Helper()
	n, err := strconv.Atoi(strings.TrimPrefix(name, "shard"))
	if err != nil {
		t.Fatalf("bad shard name %q: %v", name, err)
	}
	return netsim.NodeID(n)
}

// requireClean fails on any recorded invariant breach.
func requireClean(t *testing.T, res *MigrateResult) {
	t.Helper()
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if t.Failed() {
		t.FailNow()
	}
}

// migrateBase is the shared scenario shape: a 3-shard fleet growing to
// 4 halfway through an 80-row stream, with transfers forced into many
// small chunks.
func migrateBase() MigrateConfig {
	return MigrateConfig{Seed: 11, ChunkBytes: 32}
}

// TestMigrateCleanHandoff proves the fault-free baseline: the reshard
// moves at least one stream in several chunks, fences the whole fleet,
// flips to the new epoch, keeps every probe exact before, during, and
// after, and leaves every stream's final owner holding exactly the
// summary a single tree fed the same values would hold.
func TestMigrateCleanHandoff(t *testing.T) {
	cfg := migrateBase()
	res, err := RunMigrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res)
	if !res.Flipped || res.FromEpoch != 1 || res.ToEpoch != 2 {
		t.Fatalf("cutover: flipped=%v epochs %d -> %d", res.Flipped, res.FromEpoch, res.ToEpoch)
	}
	if len(res.Unfenced) != 0 {
		t.Fatalf("healthy fleet left unfenced: %v", res.Unfenced)
	}
	if len(res.Moves) == 0 {
		t.Fatal("growing the fleet moved no streams")
	}
	for _, mv := range res.Moves {
		if mv.Cold {
			t.Fatalf("move %+v went cold without faults", mv)
		}
		if mv.Chunks < 2 {
			t.Fatalf("move %+v fit one chunk; the transfer path is untested", mv)
		}
	}
	// Phases all probed, and no probe ever strayed past its bound (the
	// harness already asserted that; here: the phases really occurred).
	phases := map[string]int{}
	for _, p := range res.Probes {
		phases[p.Phase]++
	}
	for _, ph := range []string{"pre", "post"} {
		if phases[ph] == 0 {
			t.Fatalf("no %q-phase probes (got %v)", ph, phases)
		}
	}
	// Final fleet state is byte-identical to a per-stream twin fed the
	// same synthetic values — the handoff neither lost nor duplicated a
	// single update.
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	withDefs := cfg.withDefaults()
	rows := make([][]float64, withDefs.DataCount)
	for i := range rows {
		rows[i] = make([]float64, len(withDefs.Streams))
		for j := range rows[i] {
			rows[i][j] = withDefs.ValueLo + rng.Float64()*(withDefs.ValueHi-withDefs.ValueLo)
		}
	}
	for j, st := range withDefs.Streams {
		twin, err := core.New(core.Options{
			WindowSize: withDefs.WindowSize, Coefficients: withDefs.Coefficients, MinLevel: withDefs.MinLevel,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range rows {
			twin.Update(rows[i][j])
		}
		if got := res.FinalState[st]; !bytes.Equal(got, twin.AppendSummary(nil)) {
			t.Fatalf("stream %q: final owner's summary differs from the twin's", st)
		}
	}
}

// TestMigrateDeterminism pins the pure-function property: the same
// config replays to byte-identical logs, probes, and fleet state.
func TestMigrateDeterminism(t *testing.T) {
	a, err := RunMigrate(migrateBase())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMigrate(migrateBase())
	if err != nil {
		t.Fatal(err)
	}
	if a.Log != b.Log {
		t.Error("message logs differ across identical runs")
	}
	if a.Counters != b.Counters {
		t.Error("counters differ across identical runs")
	}
	if a.ProbesText() != b.ProbesText() {
		t.Error("probe records differ across identical runs")
	}
	if !reflect.DeepEqual(a.FinalState, b.FinalState) {
		t.Error("final fleet state differs across identical runs")
	}
	if !reflect.DeepEqual(a.Applied, b.Applied) {
		t.Error("transfer ledgers differ across identical runs")
	}
}

// TestMigrateTransferCut partitions the driver from the transfer
// source at several instants mid-handoff — cutting the byte stream at
// a different offset each time — and heals it shortly after. Every
// variant must resume from the exact token (the harness's ledger
// refuses re-sent or skipped bytes), finish warm, and converge to the
// same post-migration bytes as the uninterrupted golden run.
func TestMigrateTransferCut(t *testing.T) {
	cfg := migrateBase()
	cfg.Faults = netsim.LinkFaults{LatencyBase: 0.05}
	golden, err := RunMigrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, golden)
	if len(golden.Moves) == 0 {
		t.Fatal("golden run moved nothing")
	}
	srcName := golden.Moves[0].From
	src := migNodeID(t, srcName)
	migrateAt := cfg.withDefaults().MigrateAt
	for _, dt := range []float64{0.05, 0.15, 0.3, 0.6} {
		t.Run(strconv.FormatFloat(dt, 'g', -1, 64), func(t *testing.T) {
			c := cfg
			c.Script = Script{
				PartitionAt(migrateAt+dt, 0, src),
				HealLinkAt(migrateAt+dt+1.5, 0, src),
			}
			res, err := RunMigrate(c)
			if err != nil {
				t.Fatal(err)
			}
			requireClean(t, res)
			if !res.Flipped {
				t.Fatal("cut run never flipped")
			}
			for _, mv := range res.Moves {
				if mv.Cold {
					t.Fatalf("move %+v went cold despite the heal", mv)
				}
			}
			// The ledger is identical to the golden run's: the same
			// chunks at the same offsets, none repeated — an interrupted
			// transfer costs retransmitted *requests*, never re-applied
			// *bytes*.
			if !reflect.DeepEqual(res.Applied, golden.Applied) {
				t.Fatalf("cut at +%v: transfer ledger diverged from golden\n got %v\nwant %v",
					dt, res.Applied, golden.Applied)
			}
			// And the moved streams' final bytes match golden exactly.
			for _, mv := range res.Moves {
				if !bytes.Equal(res.FinalState[mv.Stream], golden.FinalState[mv.Stream]) {
					t.Fatalf("cut at +%v: stream %q final state diverged from golden", dt, mv.Stream)
				}
			}
		})
	}
}

// TestMigrateCutoverPartition cuts the driver off from the NEW owner
// mid-cutover: the push leg and the fence both stall, retry, and
// complete after the heal, with the destination's resume token making
// sure no byte lands twice.
func TestMigrateCutoverPartition(t *testing.T) {
	cfg := migrateBase()
	cfg.Faults = netsim.LinkFaults{LatencyBase: 0.05}
	golden, err := RunMigrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, golden)
	newcomerName := golden.Moves[0].To
	newcomer := migNodeID(t, newcomerName)
	migrateAt := cfg.withDefaults().MigrateAt
	c := cfg
	c.Script = Script{
		PartitionAt(migrateAt+0.4, 0, newcomer),
		HealLinkAt(migrateAt+2.4, 0, newcomer),
	}
	res, err := RunMigrate(c)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res)
	if !res.Flipped || len(res.Unfenced) != 0 {
		t.Fatalf("cutover: flipped=%v unfenced=%v", res.Flipped, res.Unfenced)
	}
	for _, mv := range res.Moves {
		if mv.Cold {
			t.Fatalf("move %+v went cold despite the heal", mv)
		}
		if !bytes.Equal(res.FinalState[mv.Stream], golden.FinalState[mv.Stream]) {
			t.Fatalf("stream %q final state diverged from golden", mv.Stream)
		}
	}
	if !reflect.DeepEqual(res.Applied, golden.Applied) {
		t.Fatalf("transfer ledger diverged from golden\n got %v\nwant %v", res.Applied, golden.Applied)
	}
}

// TestMigrateSourceCrash kills a transfer source outright: its moves
// go cold instead of stalling the reshard, the fence proceeds without
// it, the flip still happens, and every probe — including the window
// where the summary exists nowhere — stays inside its bound because
// the fold answers the lost streams with fully tainted stand-ins.
func TestMigrateSourceCrash(t *testing.T) {
	cfg := migrateBase()
	cfg.Faults = netsim.LinkFaults{LatencyBase: 0.05}
	cfg.ColdAfter = 4
	cfg.FenceBudget = 4
	golden, err := RunMigrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	victimName := golden.Moves[0].From
	victim := migNodeID(t, victimName)
	migrateAt := cfg.withDefaults().MigrateAt
	c := cfg
	c.Script = Script{CrashAt(migrateAt+0.1, victim)}
	res, err := RunMigrate(c)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res)
	if !res.Flipped {
		t.Fatal("crash of one source stalled the cutover forever")
	}
	var coldStreams []string
	for _, mv := range res.Moves {
		if mv.From == victimName {
			if !mv.Cold {
				t.Fatalf("move %+v from the crashed source completed warm", mv)
			}
			coldStreams = append(coldStreams, mv.Stream)
		} else if mv.Cold {
			t.Fatalf("move %+v went cold though its source was healthy", mv)
		}
	}
	if len(coldStreams) == 0 {
		t.Fatal("crashed source had no moves; scenario proves nothing")
	}
	found := false
	for _, u := range res.Unfenced {
		if u == victimName {
			found = true
		}
	}
	if !found {
		t.Fatalf("crashed shard missing from the unfenced list %v", res.Unfenced)
	}
	// The cold stream's history is gone: post-flip ingest rebuilds a
	// fresh tree on the new owner, but its arrival count lags ground
	// truth forever — and honest probes must quantify that gap with
	// taint (a stand-in while the stream exists nowhere, a tainted
	// fast-forward once the rebuilt tree answers), never close it.
	cold := coldStreams[0]
	if enc := res.FinalState[cold]; enc != nil {
		sum, err := core.DecodeSummary(enc)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Arrivals >= int64(cfg.withDefaults().DataCount) {
			t.Fatalf("cold stream %q shows %d arrivals; the lost history was double-counted", cold, sum.Arrivals)
		}
	}
	taintSeen := false
	for _, p := range res.Probes {
		if p.Phase != "post" || p.Err != "" || p.Bound <= 0 {
			continue
		}
		for _, m := range append(append([]string(nil), p.Missing...), p.Advanced...) {
			if m == cold {
				taintSeen = true
			}
		}
	}
	if !taintSeen {
		t.Fatal("no post-flip probe quantified the cold stream's taint")
	}
}

// TestMigrateStaleStraggler injects a write carrying the old epoch at
// a moved stream's old owner after the fence: the shard must refuse it
// (the refusal counter moves) and the fleet's final state must be
// byte-identical to the run without the straggler — the update was
// refused, not double-counted.
func TestMigrateStaleStraggler(t *testing.T) {
	cfg := migrateBase()
	golden, err := RunMigrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, golden)
	oldOwner := golden.Moves[0].From
	c := cfg
	c.StaleWriteAt = c.withDefaults().MigrateAt + 20 // comfortably post-flip
	res, err := RunMigrate(c)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, res)
	if res.Refusals[oldOwner] == 0 {
		t.Fatalf("stale write was not refused (refusals: %v)", res.Refusals)
	}
	if !reflect.DeepEqual(res.FinalState, golden.FinalState) {
		t.Fatal("stale write changed the fleet's final state")
	}
}
