package scenario

import (
	"strings"
	"testing"

	"github.com/streamsum/swat/internal/netsim"
)

// healthyClusterConfig is the fault-free baseline: 3 shards, perfect
// links with a little latency, no script.
func healthyClusterConfig(seed int64) ClusterConfig {
	return ClusterConfig{
		Seed:   seed,
		Faults: netsim.LinkFaults{LatencyBase: 0.01},
	}
}

// TestClusterHealthyExact pins the no-fault behavior: with MinLevel's
// raw ring covering the probed age and every shard answering, every
// gather is exact — zero bound, zero error, no stand-ins.
func TestClusterHealthyExact(t *testing.T) {
	res, err := RunCluster(healthyClusterConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations in a healthy run:\n%s", strings.Join(res.Violations, "\n"))
	}
	if len(res.Probes) == 0 {
		t.Fatal("no probes ran")
	}
	for _, p := range res.Probes {
		if p.Err != "" {
			t.Fatalf("t=%v: probe error %q in a healthy run", p.T, p.Err)
		}
		if !p.Quorum || p.Answered != 3 {
			t.Fatalf("t=%v: answered=%d quorum=%v, want all 3 shards", p.T, p.Answered, p.Quorum)
		}
		if len(p.Missing) != 0 || len(p.Advanced) != 0 {
			t.Fatalf("t=%v: missing=%v advanced=%v in a healthy run", p.T, p.Missing, p.Advanced)
		}
		if p.Bound != 0 {
			t.Fatalf("t=%v: bound=%v, want 0 (aligned merges of fresh ages are exact)", p.T, p.Bound)
		}
		if diff := p.Value - p.Exact; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("t=%v: value %v != exact %v", p.T, p.Value, p.Exact)
		}
	}
	// Every stream must be placed on a real shard.
	if len(res.Placement) != 6 {
		t.Fatalf("placement has %d streams, want 6", len(res.Placement))
	}
}

// partitionedShard finds a shard that owns at least one stream under
// the given seed, so partitioning it is guaranteed to degrade answers.
func partitionedShard(t *testing.T, seed int64) (netsim.NodeID, int) {
	t.Helper()
	res, err := RunCluster(ClusterConfig{Seed: seed, DataCount: 1, ProbeStart: 1, SettleTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	owned := make(map[string]int)
	for _, shard := range res.Placement {
		owned[shard]++
	}
	for id := netsim.NodeID(1); id <= 3; id++ {
		if n := owned[shardName(id)]; n > 0 {
			return id, n
		}
	}
	t.Fatal("no shard owns a stream")
	return 0, 0
}

// TestClusterPartitionWidensBounds is the acceptance scenario: one
// shard is partitioned from the client mid-run. Gathers keep answering
// from the surviving majority, the partitioned shard's streams enter
// the fold as widened stand-ins (Missing non-empty, Bound > 0), and no
// answer's bound ever fails to cover the exact cluster-wide truth —
// the invariant check inside RunCluster records any lie as a
// Violation.
func TestClusterPartitionWidensBounds(t *testing.T) {
	const seed = 7
	victim, owned := partitionedShard(t, seed)
	cfg := healthyClusterConfig(seed)
	cfg.Script = Script{
		PartitionAt(40, 0, victim),
	}
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("bounds lied or accounting broke:\n%s", strings.Join(res.Violations, "\n"))
	}
	var degraded, exactBefore int
	for _, p := range res.Probes {
		if p.Err != "" {
			t.Fatalf("t=%v: probe error %q; quorum (2 of 3) should hold throughout", p.T, p.Err)
		}
		if p.T < 40 {
			if len(p.Missing) != 0 || p.Bound != 0 {
				t.Fatalf("t=%v: degraded before the partition (missing=%v bound=%v)", p.T, p.Missing, p.Bound)
			}
			exactBefore++
			continue
		}
		if p.T < 42 {
			continue // summary requests in flight at the cut may straddle it
		}
		if p.Answered != 2 {
			t.Fatalf("t=%v: answered=%d, want exactly the 2 reachable shards", p.T, p.Answered)
		}
		if len(p.Missing) != owned {
			t.Fatalf("t=%v: missing=%v, want the victim's %d streams", p.T, p.Missing, owned)
		}
		if p.Bound <= 0 {
			t.Fatalf("t=%v: bound=%v; stand-ins must widen the answer", p.T, p.Bound)
		}
		degraded++
	}
	if exactBefore == 0 || degraded == 0 {
		t.Fatalf("want probes on both sides of the cut, got %d before / %d after", exactBefore, degraded)
	}
}

// TestClusterBelowQuorumWithholds partitions two of three shards: the
// lone survivor is below the majority quorum, so gathers report an
// error instead of fabricating an answer from one shard plus
// stand-ins.
func TestClusterBelowQuorumWithholds(t *testing.T) {
	cfg := healthyClusterConfig(7)
	cfg.Script = Script{
		PartitionAt(40, 0, 1),
		PartitionAt(40, 0, 2),
	}
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations:\n%s", strings.Join(res.Violations, "\n"))
	}
	var withheld bool
	for _, p := range res.Probes {
		if p.T < 42 {
			continue
		}
		if p.Err == "" {
			t.Fatalf("t=%v: answered below quorum (answered=%d)", p.T, p.Answered)
		}
		if !strings.Contains(p.Err, "below quorum") {
			t.Fatalf("t=%v: err=%q, want a below-quorum refusal", p.T, p.Err)
		}
		withheld = true
	}
	if !withheld {
		t.Fatal("no post-partition probes ran")
	}
}

// TestClusterCrashAdvancesLaggingShard crashes a shard mid-run and
// restarts it. The restarted shard answers gathers again but its trees
// restarted from zero, so its summaries verifiably lag the client's
// shipped counts; the fold fast-forwards them (Advanced non-empty)
// with widened, still-covering bounds rather than silently
// under-counting.
func TestClusterCrashAdvancesLaggingShard(t *testing.T) {
	const seed = 7
	victim, owned := partitionedShard(t, seed)
	cfg := healthyClusterConfig(seed)
	cfg.Script = Script{
		CrashAt(40, victim),
		RestartAt(44, victim),
	}
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("bounds lied:\n%s", strings.Join(res.Violations, "\n"))
	}
	var advanced bool
	for _, p := range res.Probes {
		if p.T < 45 || p.Err != "" {
			continue
		}
		if p.Answered == 3 && len(p.Advanced) == owned {
			if p.Bound <= 0 {
				t.Fatalf("t=%v: advanced a lagging shard with bound=%v, want > 0", p.T, p.Bound)
			}
			advanced = true
		}
	}
	if !advanced {
		t.Fatal("no probe saw the restarted shard answer with a lagging, fast-forwarded summary")
	}
}

// TestClusterDeterminism replays the partition scenario twice and
// demands byte-identical logs, counters, and probe records.
func TestClusterDeterminism(t *testing.T) {
	cfg := healthyClusterConfig(11)
	cfg.Faults.LatencyJitter = 0.02
	cfg.Script = Script{
		PartitionAt(40, 0, 1),
		HealLinkAt(60, 0, 1),
		CrashAt(70, 2),
		RestartAt(74, 2),
	}
	run := func() (string, string, string) {
		res, err := RunCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Log, res.Counters, res.ProbesText()
	}
	log1, cnt1, probes1 := run()
	log2, cnt2, probes2 := run()
	if log1 != log2 {
		t.Error("message logs differ across identical runs")
	}
	if cnt1 != cnt2 {
		t.Errorf("counters differ:\n%s\nvs\n%s", cnt1, cnt2)
	}
	if probes1 != probes2 {
		t.Errorf("probe records differ:\n%s\nvs\n%s", probes1, probes2)
	}
}

// TestClusterHealRecovers partitions a shard and heals the link: after
// data resumes flowing, the shard's summaries lag (values were lost at
// the cut), so gathers advance them — and once again answer with all
// shards, never lying.
func TestClusterHealRecovers(t *testing.T) {
	const seed = 7
	victim, _ := partitionedShard(t, seed)
	cfg := healthyClusterConfig(seed)
	cfg.Script = Script{
		PartitionAt(30, 0, victim),
		HealLinkAt(50, 0, victim),
	}
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("bounds lied:\n%s", strings.Join(res.Violations, "\n"))
	}
	var recovered bool
	for _, p := range res.Probes {
		if p.T > 52 && p.Err == "" && p.Answered == 3 && len(p.Missing) == 0 {
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("no full-fleet probe after the heal")
	}
}
