package scenario

// Deterministic failure coverage for live resharding (the
// cluster.Rebalance protocol), exercised over the fault-injected
// network. The topology is a star: the root is the cluster client and
// migration driver, children 1..Shards are the old fleet, and the last
// child is the newcomer the reshard brings in. Placement uses the real
// versioned ring; the handoff uses the real chunked-transfer algebra
// (core.SummaryTransfer / core.SummaryAssembly); folds use the real
// merge/stand-in algebra. What the simulation replaces is only the
// transport — transfer frames become netsim messages subject to
// scripted crashes, cuts, and partitions — so the invariants pinned
// here ("an interrupted transfer resumes without re-applying a byte",
// "bounds stay honest at every step of a migration", "a stale-epoch
// writer is refused, never double-counted") are properties of the
// protocol, not of healthy TCP.
//
// The driver mirrors cluster.Rebalance's state machine: drain (ingest
// is buffered for the duration, the sim analog of the client holding
// its feeds), then per moved stream pull → push → commit, then a fence
// broadcast to the whole fleet, and only then the epoch flip that
// makes the new ring authoritative. A source that stays unreachable
// past ColdAfter turns its move cold — the summary is left behind and
// every later fold answers that stream with a fully tainted stand-in,
// which is exactly the never-lying degradation the probes score.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"github.com/streamsum/swat/internal/cluster"
	"github.com/streamsum/swat/internal/core"
	"github.com/streamsum/swat/internal/netsim"
	"github.com/streamsum/swat/internal/sim"
)

// MigrateConfig describes one live-resharding scenario.
type MigrateConfig struct {
	// Shards is the size of the old fleet; the run always adds one
	// newcomer on top. 0 means 3.
	Shards int
	// Streams names the logical streams; nil means 6 streams s0..s5.
	Streams []string
	// Seed drives placement, faults, and data. Same seed, same config,
	// same script — same run.
	Seed int64
	// Tree geometry; zero means 16/4/2 (MinLevel 2 keeps fresh probes
	// on healthy shards exact, so every non-zero bound is attributable
	// to faults or migration taint).
	WindowSize   int
	Coefficients int
	MinLevel     int
	// ValueLo/ValueHi bound the synthetic values and declare the
	// widening range. Both zero means [0, 100].
	ValueLo, ValueHi float64
	// DataInterval is the gap between arrival rows; 0 means 1.
	DataInterval float64
	// DataCount is the number of rows; 0 means 80.
	DataCount int
	// MigrateAt is when the reshard starts; 0 means halfway through
	// the data stream.
	MigrateAt float64
	// ChunkBytes is the transfer chunk size; small values force
	// multi-chunk handoffs. 0 means 48.
	ChunkBytes int
	// RetryEvery is the driver's retransmit interval; 0 means 0.5.
	RetryEvery float64
	// ColdAfter is how long one move may stall before the driver
	// abandons it cold; 0 means 8.
	ColdAfter float64
	// FenceBudget is how long the fence broadcast retries before the
	// flip proceeds with unfenced nodes listed; 0 means 8.
	FenceBudget float64
	// Probe schedule, as in ClusterConfig.
	ProbeStart int
	ProbeEvery int
	ProbeAge   int
	// StaleWriteAt, when non-zero, injects one data row at that time
	// carrying the OLD epoch to the OLD owner of the first moved
	// stream — the straggler the fence must refuse.
	StaleWriteAt float64
	// Faults is the ambient link behavior; Script layers timed faults.
	Faults netsim.LinkFaults
	Script Script
	// SettleTime extends the run past the last row; 0 means 30.
	SettleTime float64
}

func (c MigrateConfig) withDefaults() MigrateConfig {
	if c.Shards == 0 {
		c.Shards = 3
	}
	if c.Streams == nil {
		for i := 0; i < 6; i++ {
			c.Streams = append(c.Streams, fmt.Sprintf("s%d", i))
		}
	}
	if c.WindowSize == 0 {
		c.WindowSize = 16
	}
	if c.Coefficients == 0 {
		c.Coefficients = 4
	}
	if c.MinLevel == 0 {
		c.MinLevel = 2
	}
	if c.ValueLo == 0 && c.ValueHi == 0 {
		c.ValueHi = 100
	}
	if c.DataInterval == 0 {
		c.DataInterval = 1
	}
	if c.DataCount == 0 {
		c.DataCount = 80
	}
	if c.MigrateAt == 0 {
		c.MigrateAt = (float64(c.DataCount)/2 + 0.25) * c.DataInterval
	}
	if c.ChunkBytes == 0 {
		c.ChunkBytes = 48
	}
	if c.RetryEvery == 0 {
		c.RetryEvery = 0.5
	}
	if c.ColdAfter == 0 {
		c.ColdAfter = 8
	}
	if c.FenceBudget == 0 {
		c.FenceBudget = 8
	}
	if c.ProbeStart == 0 {
		c.ProbeStart = c.WindowSize + 1
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = 4
	}
	if c.SettleTime == 0 {
		c.SettleTime = 30
	}
	return c
}

// MigMove records one stream's handoff.
type MigMove struct {
	Stream   string
	From, To string
	Bytes    int64
	Chunks   int
	Cold     bool
}

// AppliedChunk is one pull chunk the driver actually applied (duplicate
// deliveries from retransmissions are idempotently dropped and do not
// appear). Offsets per stream must be strictly increasing and gap-free
// — the no-re-sent-bytes ledger.
type AppliedChunk struct {
	Stream string
	Offset int64
	N      int
}

// MigProbe is one gather's outcome against ground truth, tagged with
// the migration phase it landed in.
type MigProbe struct {
	T     float64
	Phase string // "pre", "mid", "post"
	Value float64
	Bound float64
	Exact float64
	// Missing lists streams answered by fully tainted stand-ins;
	// Advanced lists streams whose summary lagged the shipped count and
	// was fast-forwarded with tainted midpoints.
	Missing  []string
	Advanced []string
	Answered int
	Err      string
}

// MigrateResult is a migration scenario's canonical record.
type MigrateResult struct {
	Log        string
	Counters   string
	Probes     []MigProbe
	Violations []string
	// FromEpoch/ToEpoch are the ring epochs either side of the flip.
	FromEpoch, ToEpoch uint64
	// Flipped reports whether the cutover completed within the run.
	Flipped bool
	// Moves are the handoffs in execution (sorted-stream) order.
	Moves []MigMove
	// Unfenced lists shards the fence broadcast could not reach before
	// the flip, by name.
	Unfenced []string
	// Applied is the pull ledger across all moves.
	Applied []AppliedChunk
	// Refusals counts stale-epoch refusals per shard name.
	Refusals map[string]int
	// FinalState maps each stream to the canonical summary its
	// final-ring owner holds at the end of the run (nil when the owner
	// holds nothing, e.g. a cold move onto an empty newcomer).
	FinalState map[string][]byte
	// OldPlacement/NewPlacement map stream → shard name under each ring.
	OldPlacement, NewPlacement map[string]string
}

// ProbesText renders probe outcomes canonically; byte-identical across
// same-seed runs.
func (r *MigrateResult) ProbesText() string {
	var b strings.Builder
	for _, p := range r.Probes {
		if p.Err != "" {
			fmt.Fprintf(&b, "t=%.9g phase=%s answered=%d err=%q\n", p.T, p.Phase, p.Answered, p.Err)
			continue
		}
		fmt.Fprintf(&b, "t=%.9g phase=%s v=%.9g bound=%.9g exact=%.9g answered=%d missing=%v advanced=%v\n",
			p.T, p.Phase, p.Value, p.Bound, p.Exact, p.Answered, p.Missing, p.Advanced)
	}
	return b.String()
}

// Message payloads. Epochs ride every stream-addressed frame exactly as
// on the wire: 0 means unversioned, behind-the-shard refuses, ahead
// adopts forward.
type mdataMsg struct {
	Stream string
	V      float64
	Epoch  uint64
}

type msumReq struct {
	ID    int
	Epoch uint64
}

type msumRes struct {
	ID    int
	Shard netsim.NodeID
	Stale bool
	Names []string
	Sums  [][]byte
}

type mreadReq struct {
	ID     int
	Stream string
	Offset int64
	Total  int64
	CRC    uint32
	Chunk  int
}

type mreadRes struct {
	ID     int
	Stream string
	Offset int64
	Total  int64
	CRC    uint32
	Data   []byte
	Err    string
}

type mwriteReq struct {
	ID     int
	Stream string
	Offset int64
	Total  int64
	CRC    uint32
	Data   []byte
}

type mwriteRes struct {
	ID        int
	Stream    string
	Have      int64
	Committed bool
	Err       string
}

type mcommitReq struct {
	ID     int
	Stream string
	Total  int64
	CRC    uint32
	Epoch  uint64
}

type mcommitRes struct {
	ID        int
	Stream    string
	Committed bool
	Err       string
}

type mfenceMsg struct{ Epoch uint64 }

type mfenceAck struct {
	Shard netsim.NodeID
	Epoch uint64
}

// migShard is one shard's volatile state: stream trees, the fence
// epoch, export snapshots (source side), and transfer assemblies plus
// committed marks (destination side). A crash loses all of it.
type migShard struct {
	trees     map[string]*core.Tree
	epoch     uint64
	exports   map[string]*core.SummaryTransfer
	asms      map[string]*core.SummaryAssembly
	committed map[string]bool
}

func newMigShard() *migShard {
	return &migShard{
		trees:     make(map[string]*core.Tree),
		exports:   make(map[string]*core.SummaryTransfer),
		asms:      make(map[string]*core.SummaryAssembly),
		committed: make(map[string]bool),
	}
}

// driver phases.
const (
	migIdle = iota
	migPull
	migPush
	migCommit
	migFence
	migDone
)

type migHarness struct {
	cfg   MigrateConfig
	sim   *sim.Simulator
	net   *netsim.Network
	opts  core.Options
	mopts core.MergeOptions

	oldRing, newRing *cluster.Ring
	ring             *cluster.Ring // authoritative placement, flips at cutover
	epoch            uint64
	byName           map[string]netsim.NodeID
	shards           map[netsim.NodeID]*migShard

	seq     uint64
	sent    map[string]int64
	history map[string][]float64
	rows    [][]float64

	migrating bool
	buffered  [][]float64 // rows deferred while the driver holds ingest

	// driver state
	phase        int
	mvIdx        int
	asm          *core.SummaryAssembly
	xfer         *core.SummaryTransfer
	waitID       int
	nextID       int
	coldDeadline float64
	pushHave     int64
	fencePending map[netsim.NodeID]bool
	fenceDeadln  float64

	gathers  map[int]*gatherMig
	gatherID int
	res      *MigrateResult
}

type gatherMig struct {
	responses map[netsim.NodeID]msumRes
	sent      map[string]int64
	phase     string
}

// migShardName names a shard on the ring; the newcomer is the last ID.
func migShardName(id netsim.NodeID) string { return fmt.Sprintf("shard%d", id) }

// RunMigrate replays one live-resharding scenario. Invariants checked
// along the way land in Result.Violations: every answered probe must
// satisfy |Value − Exact| ≤ Bound, pull chunks apply gap-free and
// monotonically (a byte is never applied twice), non-cold moves must
// transfer exactly their summary's length, and the network accounting
// must balance.
func RunMigrate(cfg MigrateConfig) (*MigrateResult, error) {
	cfg = cfg.withDefaults()
	top := netsim.NewTopology()
	var oldIDs []netsim.NodeID
	for i := 0; i < cfg.Shards; i++ {
		id, err := top.AddChild(top.Root())
		if err != nil {
			return nil, err
		}
		oldIDs = append(oldIDs, id)
	}
	newcomer, err := top.AddChild(top.Root())
	if err != nil {
		return nil, err
	}
	if err := cfg.Script.Validate(top); err != nil {
		return nil, err
	}
	oldNames := make([]string, len(oldIDs))
	byName := make(map[string]netsim.NodeID, len(oldIDs)+1)
	for i, id := range oldIDs {
		oldNames[i] = migShardName(id)
		byName[oldNames[i]] = id
	}
	byName[migShardName(newcomer)] = newcomer
	oldRing, err := cluster.NewRing(cfg.Seed, 16, oldNames)
	if err != nil {
		return nil, err
	}
	newRing, err := oldRing.WithNode(migShardName(newcomer))
	if err != nil {
		return nil, err
	}
	s := sim.New()
	net, err := netsim.NewNetwork(s, top, cfg.Faults, cfg.Seed)
	if err != nil {
		return nil, err
	}
	h := &migHarness{
		cfg:     cfg,
		sim:     s,
		net:     net,
		opts:    core.Options{WindowSize: cfg.WindowSize, Coefficients: cfg.Coefficients, MinLevel: cfg.MinLevel},
		mopts:   core.MergeOptions{ValueLo: cfg.ValueLo, ValueHi: cfg.ValueHi},
		oldRing: oldRing,
		newRing: newRing,
		ring:    oldRing,
		epoch:   oldRing.Epoch(),
		byName:  byName,
		shards:  make(map[netsim.NodeID]*migShard, len(oldIDs)+1),
		sent:    make(map[string]int64, len(cfg.Streams)),
		history: make(map[string][]float64, len(cfg.Streams)),
		gathers: make(map[int]*gatherMig),
		res: &MigrateResult{
			FromEpoch:    oldRing.Epoch(),
			ToEpoch:      newRing.Epoch(),
			Refusals:     make(map[string]int),
			FinalState:   make(map[string][]byte),
			OldPlacement: make(map[string]string, len(cfg.Streams)),
			NewPlacement: make(map[string]string, len(cfg.Streams)),
		},
	}
	if _, err := core.New(h.opts); err != nil {
		return nil, err
	}
	for _, st := range cfg.Streams {
		h.res.OldPlacement[st] = oldRing.Owner(st)
		h.res.NewPlacement[st] = newRing.Owner(st)
	}
	allIDs := append(append([]netsim.NodeID(nil), oldIDs...), newcomer)
	for _, id := range allIDs {
		h.shards[id] = newMigShard()
	}
	for _, id := range allIDs {
		id := id
		sub := func(kind string, f func(netsim.NodeID, netsim.Message)) error {
			return net.Subscribe(id, kind, func(m netsim.Message) { f(id, m) })
		}
		for kind, f := range map[string]func(netsim.NodeID, netsim.Message){
			"mdata":   h.onMigData,
			"msum":    h.onMigSumReq,
			"mread":   h.onMigRead,
			"mwrite":  h.onMigWrite,
			"mcommit": h.onMigCommit,
			"mfence":  h.onMigFence,
		} {
			if err := sub(kind, f); err != nil {
				return nil, err
			}
		}
	}
	root := top.Root()
	for kind, f := range map[string]func(netsim.Message){
		"msumres":    h.onMigSumRes,
		"mreadres":   h.onMigReadRes,
		"mwriteres":  h.onMigWriteRes,
		"mcommitres": h.onMigCommitRes,
		"mfenceres":  h.onMigFenceAck,
	} {
		if err := net.Subscribe(root, kind, f); err != nil {
			return nil, err
		}
	}
	// A crash loses the shard's volatile state: trees, fence epoch,
	// export snapshots, and half-assembled transfers.
	net.OnCrash = func(id netsim.NodeID) {
		if h.shards[id] != nil {
			h.shards[id] = newMigShard()
		}
	}
	return h.run()
}

// shardIDs returns every shard's NodeID ascending (map iteration is
// not deterministic; schedules must be).
func (h *migHarness) shardIDs() []netsim.NodeID {
	out := make([]netsim.NodeID, 0, len(h.shards))
	for id := range h.shards {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// violate records one invariant breach.
func (h *migHarness) violate(format string, args ...any) {
	h.res.Violations = append(h.res.Violations, fmt.Sprintf(format, args...))
}

func (h *migHarness) send(to netsim.NodeID, kind string, payload any) {
	h.seq++
	h.net.Send(h.net.Topology().Root(), to, kind, h.seq, payload)
}

func (h *migHarness) reply(from netsim.NodeID, kind string, payload any) {
	h.seq++
	h.net.Send(from, h.net.Topology().Root(), kind, h.seq, payload)
}

// ---- shard handlers ----

// shardAdmit applies the wire's epoch rule at a shard: 0 passes,
// ahead adopts forward, behind refuses.
func (h *migHarness) shardAdmit(id netsim.NodeID, epoch uint64) bool {
	sh := h.shards[id]
	if epoch == 0 || epoch == sh.epoch {
		return true
	}
	if epoch > sh.epoch {
		sh.epoch = epoch
		return true
	}
	h.res.Refusals[migShardName(id)]++
	return false
}

func (h *migHarness) onMigData(id netsim.NodeID, m netsim.Message) {
	d, ok := m.Payload.(mdataMsg)
	if !ok {
		h.violate("shard %d: bad mdata payload %T", id, m.Payload)
		return
	}
	if !h.shardAdmit(id, d.Epoch) {
		return
	}
	sh := h.shards[id]
	tr, ok := sh.trees[d.Stream]
	if !ok {
		var err error
		if tr, err = core.New(h.opts); err != nil {
			h.violate("%v", err)
			return
		}
		sh.trees[d.Stream] = tr
	}
	tr.Update(d.V)
}

func (h *migHarness) onMigSumReq(id netsim.NodeID, m netsim.Message) {
	req, ok := m.Payload.(msumReq)
	if !ok {
		h.violate("shard %d: bad msum payload %T", id, m.Payload)
		return
	}
	res := msumRes{ID: req.ID, Shard: id}
	if !h.shardAdmit(id, req.Epoch) {
		res.Stale = true
		h.reply(id, "msumres", res)
		return
	}
	sh := h.shards[id]
	names := make([]string, 0, len(sh.trees))
	for name := range sh.trees {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		res.Names = append(res.Names, name)
		res.Sums = append(res.Sums, sh.trees[name].AppendSummary(nil))
	}
	h.reply(id, "msumres", res)
}

// onMigRead serves one export chunk. The snapshot is cached per stream
// so a resumed pull reads the same bytes; an identity mismatch (the
// snapshot was lost to a crash and re-taken over different state)
// restarts the transfer at offset 0 with the new identity — the driver
// may resume monotonically only within one identity.
func (h *migHarness) onMigRead(id netsim.NodeID, m netsim.Message) {
	req, ok := m.Payload.(mreadReq)
	if !ok {
		h.violate("shard %d: bad mread payload %T", id, m.Payload)
		return
	}
	sh := h.shards[id]
	res := mreadRes{ID: req.ID, Stream: req.Stream}
	xfer := sh.exports[req.Stream]
	if xfer == nil {
		tr, ok := sh.trees[req.Stream]
		if !ok {
			res.Err = fmt.Sprintf("shard %d holds no stream %q", id, req.Stream)
			h.reply(id, "mreadres", res)
			return
		}
		xfer = core.NewSummaryTransfer(tr)
		sh.exports[req.Stream] = xfer
	}
	res.Total, res.CRC = xfer.Len(), xfer.CRC()
	off := req.Offset
	if off > 0 && (req.Total != xfer.Len() || req.CRC != xfer.CRC()) {
		off = 0 // identity changed under the driver: restart
	}
	data, err := xfer.Chunk(off, req.Chunk)
	if err != nil {
		res.Err = err.Error()
		h.reply(id, "mreadres", res)
		return
	}
	res.Offset, res.Data = off, data
	h.reply(id, "mreadres", res)
}

func (h *migHarness) onMigWrite(id netsim.NodeID, m netsim.Message) {
	req, ok := m.Payload.(mwriteReq)
	if !ok {
		h.violate("shard %d: bad mwrite payload %T", id, m.Payload)
		return
	}
	sh := h.shards[id]
	res := mwriteRes{ID: req.ID, Stream: req.Stream}
	if sh.committed[req.Stream] {
		res.Committed = true
		if asm := sh.asms[req.Stream]; asm != nil {
			res.Have = asm.Have()
		}
		h.reply(id, "mwriteres", res)
		return
	}
	asm := sh.asms[req.Stream]
	if asm == nil || !asm.Matches(req.Total, req.CRC) {
		var err error
		if asm, err = core.NewSummaryAssembly(req.Total, req.CRC); err != nil {
			res.Err = err.Error()
			h.reply(id, "mwriteres", res)
			return
		}
		sh.asms[req.Stream] = asm
	}
	if len(req.Data) > 0 && req.Offset <= asm.Have() {
		if err := asm.Append(req.Offset, req.Data); err != nil {
			res.Err = err.Error()
			h.reply(id, "mwriteres", res)
			return
		}
	}
	// A gap write replies the resume token unchanged — the driver
	// continues from Have.
	res.Have = asm.Have()
	h.reply(id, "mwriteres", res)
}

func (h *migHarness) onMigCommit(id netsim.NodeID, m netsim.Message) {
	req, ok := m.Payload.(mcommitReq)
	if !ok {
		h.violate("shard %d: bad mcommit payload %T", id, m.Payload)
		return
	}
	sh := h.shards[id]
	res := mcommitRes{ID: req.ID, Stream: req.Stream}
	if sh.committed[req.Stream] {
		res.Committed = true
		h.reply(id, "mcommitres", res)
		return
	}
	if req.Epoch != 0 && sh.epoch > req.Epoch {
		res.Err = fmt.Sprintf("shard %d fenced past commit epoch %d", id, req.Epoch)
		h.reply(id, "mcommitres", res)
		return
	}
	asm := sh.asms[req.Stream]
	if asm == nil || !asm.Matches(req.Total, req.CRC) || !asm.Complete() {
		res.Err = fmt.Sprintf("shard %d has no complete transfer for %q", id, req.Stream)
		h.reply(id, "mcommitres", res)
		return
	}
	sum, err := asm.Summary()
	if err != nil {
		res.Err = err.Error()
		h.reply(id, "mcommitres", res)
		return
	}
	tr, err := core.FromSummary(sum)
	if err != nil {
		res.Err = err.Error()
		h.reply(id, "mcommitres", res)
		return
	}
	sh.trees[req.Stream] = tr
	sh.committed[req.Stream] = true
	res.Committed = true
	h.reply(id, "mcommitres", res)
}

func (h *migHarness) onMigFence(id netsim.NodeID, m netsim.Message) {
	f, ok := m.Payload.(mfenceMsg)
	if !ok {
		h.violate("shard %d: bad mfence payload %T", id, m.Payload)
		return
	}
	sh := h.shards[id]
	if f.Epoch > sh.epoch {
		sh.epoch = f.Epoch
	}
	h.reply(id, "mfenceres", mfenceAck{Shard: id, Epoch: sh.epoch})
}

// ---- driver (root) ----

// moves lists the streams whose owner changes, sorted.
func (h *migHarness) moves() []string {
	var out []string
	for _, st := range h.cfg.Streams {
		if h.oldRing.Owner(st) != h.newRing.Owner(st) {
			out = append(out, st)
		}
	}
	sort.Strings(out)
	return out
}

func (h *migHarness) currentMove() *MigMove {
	if h.mvIdx >= len(h.res.Moves) {
		return nil
	}
	return &h.res.Moves[h.mvIdx]
}

// startMigration drains ingest and begins the first pull.
func (h *migHarness) startMigration() {
	h.migrating = true
	for _, st := range h.moves() {
		h.res.Moves = append(h.res.Moves, MigMove{
			Stream: st, From: h.oldRing.Owner(st), To: h.newRing.Owner(st),
		})
	}
	h.mvIdx = -1
	h.advanceMove()
}

// advanceMove steps to the next stream, or to the fence when done.
func (h *migHarness) advanceMove() {
	h.mvIdx++
	h.asm, h.xfer, h.pushHave = nil, nil, 0
	if mv := h.currentMove(); mv != nil {
		h.phase = migPull
		h.coldDeadline = h.sim.Now() + h.cfg.ColdAfter
		h.sendPull(mv)
		return
	}
	h.startFence()
}

// goCold abandons the current move and leaves the stream behind; the
// sent registry still counts it, so folds answer it with a tainted
// stand-in rather than silence.
func (h *migHarness) goCold() {
	mv := h.currentMove()
	mv.Cold = true
	h.advanceMove()
}

// request issues one driver request and arms its retransmit timer. The
// timer re-issues the same logical request (fresh ID) for as long as
// the driver is still waiting in the same phase; past coldDeadline it
// gives up the move instead.
func (h *migHarness) request(to netsim.NodeID, kind string, build func(id int) any) {
	h.nextID++
	id := h.nextID
	h.waitID = id
	phase, mvIdx := h.phase, h.mvIdx
	h.send(to, kind, build(id))
	if err := h.sim.At(h.sim.Now()+h.cfg.RetryEvery, func() {
		if h.waitID != id || h.phase != phase || h.mvIdx != mvIdx {
			return // answered or moved on
		}
		if h.phase != migFence && h.sim.Now() >= h.coldDeadline {
			h.goCold()
			return
		}
		h.request(to, kind, build)
	}); err != nil {
		h.violate("%v", err)
	}
}

func (h *migHarness) sendPull(mv *MigMove) {
	var total int64
	var crc uint32
	var off int64
	if h.asm != nil {
		total, crc, off = h.asm.Total(), h.asm.CRC(), h.asm.Have()
	}
	h.request(h.byName[mv.From], "mread", func(id int) any {
		return mreadReq{ID: id, Stream: mv.Stream, Offset: off, Total: total, CRC: crc, Chunk: h.cfg.ChunkBytes}
	})
}

func (h *migHarness) onMigReadRes(m netsim.Message) {
	res, ok := m.Payload.(mreadRes)
	if !ok {
		h.violate("driver: bad mreadres payload %T", m.Payload)
		return
	}
	mv := h.currentMove()
	if h.phase != migPull || mv == nil || res.ID != h.waitID || res.Stream != mv.Stream {
		return // stale response from a retransmitted request
	}
	h.waitID = 0
	if res.Err != "" {
		// The source answered but cannot serve (e.g. restarted empty).
		// Keep retrying until the cold deadline: a heal may restore it.
		h.retryLater(func() { h.sendPull(mv) })
		return
	}
	if h.asm == nil || !h.asm.Matches(res.Total, res.CRC) {
		if res.Offset != 0 {
			h.violate("move %q: source switched identity mid-transfer at offset %d", mv.Stream, res.Offset)
			h.goCold()
			return
		}
		asm, err := core.NewSummaryAssembly(res.Total, res.CRC)
		if err != nil {
			h.violate("move %q: %v", mv.Stream, err)
			h.goCold()
			return
		}
		h.asm = asm
	}
	if res.Offset != h.asm.Have() {
		// The ledger's core property: every applied chunk continues at
		// exactly the resume token. Anything else means bytes were
		// re-sent or skipped.
		h.violate("move %q: chunk at offset %d, resume token %d", mv.Stream, res.Offset, h.asm.Have())
		h.goCold()
		return
	}
	if err := h.asm.Append(res.Offset, res.Data); err != nil {
		h.violate("move %q: %v", mv.Stream, err)
		h.goCold()
		return
	}
	h.res.Applied = append(h.res.Applied, AppliedChunk{Stream: mv.Stream, Offset: res.Offset, N: len(res.Data)})
	mv.Chunks++
	if !h.asm.Complete() {
		h.sendPull(mv)
		return
	}
	xfer, err := h.asm.Transfer()
	if err != nil {
		h.violate("move %q: %v", mv.Stream, err)
		h.goCold()
		return
	}
	h.xfer = xfer
	mv.Bytes = xfer.Len()
	h.phase = migPush
	h.sendPush(mv, nil, 0) // opening probe: learn the resume token
}

// retryLater re-arms the current step after RetryEvery, or goes cold.
func (h *migHarness) retryLater(step func()) {
	phase, mvIdx := h.phase, h.mvIdx
	if err := h.sim.At(h.sim.Now()+h.cfg.RetryEvery, func() {
		if h.phase != phase || h.mvIdx != mvIdx || h.waitID != 0 {
			return
		}
		if h.sim.Now() >= h.coldDeadline {
			h.goCold()
			return
		}
		step()
	}); err != nil {
		h.violate("%v", err)
	}
}

func (h *migHarness) sendPush(mv *MigMove, data []byte, off int64) {
	h.request(h.byName[mv.To], "mwrite", func(id int) any {
		return mwriteReq{ID: id, Stream: mv.Stream, Offset: off, Total: h.xfer.Len(), CRC: h.xfer.CRC(), Data: data}
	})
}

func (h *migHarness) onMigWriteRes(m netsim.Message) {
	res, ok := m.Payload.(mwriteRes)
	if !ok {
		h.violate("driver: bad mwriteres payload %T", m.Payload)
		return
	}
	mv := h.currentMove()
	if h.phase != migPush || mv == nil || res.ID != h.waitID || res.Stream != mv.Stream {
		return
	}
	h.waitID = 0
	if res.Err != "" {
		h.retryLater(func() { h.sendPush(mv, nil, 0) })
		return
	}
	h.pushHave = res.Have
	if res.Committed || res.Have >= h.xfer.Len() {
		h.phase = migCommit
		h.sendCommit(mv)
		return
	}
	data, err := h.xfer.Chunk(res.Have, h.cfg.ChunkBytes)
	if err != nil {
		h.violate("move %q: %v", mv.Stream, err)
		h.goCold()
		return
	}
	h.sendPush(mv, data, res.Have)
}

func (h *migHarness) sendCommit(mv *MigMove) {
	h.request(h.byName[mv.To], "mcommit", func(id int) any {
		return mcommitReq{ID: id, Stream: mv.Stream, Total: h.xfer.Len(), CRC: h.xfer.CRC(), Epoch: h.newRing.Epoch()}
	})
}

func (h *migHarness) onMigCommitRes(m netsim.Message) {
	res, ok := m.Payload.(mcommitRes)
	if !ok {
		h.violate("driver: bad mcommitres payload %T", m.Payload)
		return
	}
	mv := h.currentMove()
	if h.phase != migCommit || mv == nil || res.ID != h.waitID || res.Stream != mv.Stream {
		return
	}
	h.waitID = 0
	if res.Err != "" || !res.Committed {
		// The transfer may have been lost to a destination crash:
		// restart the push from the destination's resume token.
		h.phase = migPush
		h.retryLater(func() { h.sendPush(mv, nil, 0) })
		return
	}
	h.advanceMove()
}

// startFence broadcasts the new epoch to the whole fleet (old and new
// members) and retries stragglers until FenceBudget expires; then the
// flip proceeds, listing whoever never acked.
func (h *migHarness) startFence() {
	h.phase = migFence
	h.fencePending = make(map[netsim.NodeID]bool, len(h.shards))
	for _, id := range h.shardIDs() {
		h.fencePending[id] = true
	}
	h.fenceDeadln = h.sim.Now() + h.cfg.FenceBudget
	h.fenceRound()
}

func (h *migHarness) fenceRound() {
	if h.phase != migFence {
		return
	}
	if len(h.fencePending) == 0 || h.sim.Now() >= h.fenceDeadln {
		h.flip()
		return
	}
	ids := make([]netsim.NodeID, 0, len(h.fencePending))
	for id := range h.fencePending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		h.send(id, "mfence", mfenceMsg{Epoch: h.newRing.Epoch()})
	}
	if err := h.sim.At(h.sim.Now()+h.cfg.RetryEvery, func() { h.fenceRound() }); err != nil {
		h.violate("%v", err)
	}
}

func (h *migHarness) onMigFenceAck(m netsim.Message) {
	ack, ok := m.Payload.(mfenceAck)
	if !ok {
		h.violate("driver: bad mfenceres payload %T", m.Payload)
		return
	}
	if h.phase != migFence {
		return
	}
	if ack.Epoch >= h.newRing.Epoch() {
		delete(h.fencePending, ack.Shard)
	}
	if len(h.fencePending) == 0 {
		h.flip()
	}
}

// flip makes the new ring authoritative and releases buffered ingest
// under the new epoch.
func (h *migHarness) flip() {
	if h.phase == migDone {
		return
	}
	h.phase = migDone
	ids := make([]netsim.NodeID, 0, len(h.fencePending))
	for id := range h.fencePending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		h.res.Unfenced = append(h.res.Unfenced, migShardName(id))
	}
	h.ring = h.newRing
	h.epoch = h.newRing.Epoch()
	h.res.Flipped = true
	h.migrating = false
	for _, row := range h.buffered {
		h.shipRow(row)
	}
	h.buffered = nil
}

// shipRow sends one row of values by the authoritative ring, recording
// ground truth at ship time.
func (h *migHarness) shipRow(row []float64) {
	for j, st := range h.cfg.Streams {
		v := row[j]
		h.history[st] = append(h.history[st], v)
		h.sent[st]++
		h.send(h.byName[h.ring.Owner(st)], "mdata", mdataMsg{Stream: st, V: v, Epoch: h.epoch})
	}
}

// ---- probes ----

func (h *migHarness) phaseName() string {
	switch {
	case h.migrating:
		return "mid"
	case h.res.Flipped:
		return "post"
	default:
		return "pre"
	}
}

func (h *migHarness) scatter() {
	h.gatherID++
	id := h.gatherID
	sent := make(map[string]int64, len(h.sent))
	for _, st := range h.cfg.Streams {
		sent[st] = h.sent[st]
	}
	g := &gatherMig{responses: make(map[netsim.NodeID]msumRes), sent: sent, phase: h.phaseName()}
	h.gathers[id] = g
	for _, sid := range h.shardIDs() {
		h.send(sid, "msum", msumReq{ID: id, Epoch: h.epoch})
	}
	ring := h.ring
	if err := h.sim.At(h.sim.Now()+2, func() { h.fold(id, ring) }); err != nil {
		h.violate("%v", err)
	}
}

// fold closes one gather against the ring that was authoritative at
// scatter time: only the owner's copy of each stream counts — a
// retired copy on the old owner must never fold in twice.
func (h *migHarness) fold(id int, ring *cluster.Ring) {
	g := h.gathers[id]
	delete(h.gathers, id)
	now := h.sim.Now()
	probe := MigProbe{T: now, Phase: g.phase}

	arrived := make(map[string][]byte)
	for _, sid := range h.shardIDs() {
		res, ok := g.responses[sid]
		if !ok || res.Stale {
			continue
		}
		probe.Answered++
		for i, name := range res.Names {
			if ring.Owner(name) != migShardName(sid) {
				continue // a retired copy: exactly the double-count hazard
			}
			arrived[name] = res.Sums[i]
		}
	}

	streams := append([]string(nil), h.cfg.Streams...)
	sort.Strings(streams)
	fail := func(err error) {
		probe.Err = err.Error()
		h.res.Probes = append(h.res.Probes, probe)
		h.violate("t=%.9g fold failed: %v", now, err)
	}
	decoded := make(map[string]*core.Summary, len(arrived))
	var target int64
	for _, st := range streams {
		if n := g.sent[st]; n > target {
			target = n
		}
		enc, ok := arrived[st]
		if !ok {
			continue
		}
		sum, err := core.DecodeSummary(enc)
		if err != nil {
			fail(fmt.Errorf("stream %q: %w", st, err))
			return
		}
		decoded[st] = sum
		if sum.Arrivals > target {
			target = sum.Arrivals
		}
	}
	var tr *core.Tree
	for _, st := range streams {
		sum, ok := decoded[st]
		var err error
		if ok {
			if sum.Arrivals < target {
				probe.Advanced = append(probe.Advanced, st)
				if sum, err = core.AdvanceSummary(sum, target, h.mopts); err != nil {
					fail(fmt.Errorf("stream %q: %w", st, err))
					return
				}
			}
		} else {
			probe.Missing = append(probe.Missing, st)
			if target == 0 {
				continue
			}
			if sum, err = core.UnknownSummary(h.opts, 1, target, h.mopts); err != nil {
				fail(fmt.Errorf("stream %q: %w", st, err))
				return
			}
		}
		if tr == nil {
			tr, err = core.FromSummary(sum)
		} else {
			err = tr.MergeSummary(sum, h.mopts)
		}
		if err != nil {
			fail(fmt.Errorf("stream %q: %w", st, err))
			return
		}
	}
	if tr == nil {
		probe.Err = "no data"
		h.res.Probes = append(h.res.Probes, probe)
		return
	}
	val, bound, err := tr.BoundedPoint(h.cfg.ProbeAge)
	if err != nil {
		probe.Err = err.Error()
		h.res.Probes = append(h.res.Probes, probe)
		return
	}
	probe.Value, probe.Bound = val, bound
	twin, err := core.New(h.opts)
	if err != nil {
		fail(err)
		return
	}
	for i := int64(0); i < target; i++ {
		var row float64
		for _, st := range streams {
			if i < int64(len(h.history[st])) {
				row += h.history[st][i]
			}
		}
		twin.Update(row)
	}
	exact, _, err := twin.BoundedPoint(h.cfg.ProbeAge)
	if err != nil {
		fail(fmt.Errorf("twin query: %w", err))
		return
	}
	probe.Exact = exact
	h.res.Probes = append(h.res.Probes, probe)
	const eps = 1e-9
	if diff := val - exact; diff > bound+eps || diff < -bound-eps {
		h.violate("t=%.9g phase=%s answer %v strays %v from the fault-free twin's %v, beyond its bound %v",
			now, g.phase, val, diff, exact, bound)
	}
}

func (h *migHarness) onMigSumRes(m netsim.Message) {
	res, ok := m.Payload.(msumRes)
	if !ok {
		h.violate("driver: bad msumres payload %T", m.Payload)
		return
	}
	if g := h.gathers[res.ID]; g != nil {
		g.responses[res.Shard] = res
	}
}

// ---- run ----

func (h *migHarness) run() (*MigrateResult, error) {
	cfg := h.cfg
	dataRng := rand.New(rand.NewSource(cfg.Seed + 1))
	h.rows = make([][]float64, cfg.DataCount)
	for i := range h.rows {
		h.rows[i] = make([]float64, len(cfg.Streams))
		for j := range h.rows[i] {
			h.rows[i][j] = cfg.ValueLo + dataRng.Float64()*(cfg.ValueHi-cfg.ValueLo)
		}
	}
	for i := 0; i < cfg.DataCount; i++ {
		i := i
		if err := h.sim.At(float64(i+1)*cfg.DataInterval, func() {
			if h.migrating {
				h.buffered = append(h.buffered, h.rows[i])
				return
			}
			h.shipRow(h.rows[i])
		}); err != nil {
			return nil, err
		}
	}
	for i := cfg.ProbeStart; i <= cfg.DataCount; i += cfg.ProbeEvery {
		at := (float64(i) + 0.5) * cfg.DataInterval
		if err := h.sim.At(at, func() { h.scatter() }); err != nil {
			return nil, err
		}
	}
	if err := h.sim.At(cfg.MigrateAt, func() { h.startMigration() }); err != nil {
		return nil, err
	}
	if cfg.StaleWriteAt > 0 {
		if err := h.sim.At(cfg.StaleWriteAt, func() {
			moves := h.moves()
			if len(moves) == 0 {
				return
			}
			st := moves[0]
			h.send(h.byName[h.oldRing.Owner(st)], "mdata",
				mdataMsg{Stream: st, V: (cfg.ValueLo + cfg.ValueHi) / 2, Epoch: h.oldRing.Epoch()})
		}); err != nil {
			return nil, err
		}
	}
	for i, st := range cfg.Script {
		st, idx := st, i
		if err := h.sim.At(st.At, func() {
			if err := st.apply(h.net); err != nil {
				h.violate("step %d (%s) failed: %v", idx, st.Op, err)
			}
		}); err != nil {
			return nil, err
		}
	}
	h.sim.RunUntil(float64(cfg.DataCount)*cfg.DataInterval + cfg.SettleTime)

	// Post-run ledger checks: every non-cold move transferred exactly
	// its summary once, gap-free and monotone.
	applied := make(map[string]int64)
	for _, ch := range h.res.Applied {
		if ch.Offset != applied[ch.Stream] {
			h.violate("ledger: stream %q applied chunk at %d, expected %d", ch.Stream, ch.Offset, applied[ch.Stream])
		}
		applied[ch.Stream] += int64(ch.N)
	}
	for _, mv := range h.res.Moves {
		if mv.Cold {
			continue
		}
		if got := applied[mv.Stream]; got != mv.Bytes || mv.Bytes == 0 {
			h.violate("ledger: move %q applied %d bytes, summary is %d", mv.Stream, got, mv.Bytes)
		}
	}
	// Final fleet state: each stream's canonical summary at its
	// final-ring owner.
	for _, st := range h.cfg.Streams {
		if tr, ok := h.shards[h.byName[h.ring.Owner(st)]].trees[st]; ok {
			h.res.FinalState[st] = tr.AppendSummary(nil)
		}
	}
	if err := h.net.AccountingError(); err != nil {
		h.violate("%v", err)
	}
	h.res.Log = h.net.FormatLog()
	h.res.Counters = h.net.Counters().String()
	return h.res, nil
}
