// Package scenario is a deterministic failure-scenario harness for the
// fault-tolerant protocol deployments: a table-driven DSL of scripted
// fault timelines (drops, crashes, partitions, heals) replayed over the
// fault-injected network, plus invariant checkers. Every run is a pure
// function of its Config — the same seed and script yield byte-identical
// message logs, counters, and answer records — so failure tests can
// assert exact reconvergence against a fault-free golden twin.
//
//swat:deterministic
package scenario

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/streamsum/swat/internal/aps"
	"github.com/streamsum/swat/internal/dc"
	"github.com/streamsum/swat/internal/netsim"
	"github.com/streamsum/swat/internal/query"
	"github.com/streamsum/swat/internal/replication"
	"github.com/streamsum/swat/internal/sim"
)

// Op is one fault-timeline action kind.
type Op int

const (
	// OpDropAll sets the network-wide default drop probability.
	OpDropAll Op = iota
	// OpCrash takes a node down, losing its volatile state.
	OpCrash
	// OpRestart brings a crashed node back up (empty-handed).
	OpRestart
	// OpPartition cuts the link between two adjacent nodes.
	OpPartition
	// OpHealLink restores a previously cut link.
	OpHealLink
	// OpHealAll clears every drop probability and partition and restarts
	// every crashed node.
	OpHealAll
)

// String names the op for logs and error messages.
func (o Op) String() string {
	switch o {
	case OpDropAll:
		return "drop-all"
	case OpCrash:
		return "crash"
	case OpRestart:
		return "restart"
	case OpPartition:
		return "partition"
	case OpHealLink:
		return "heal-link"
	case OpHealAll:
		return "heal-all"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Step is one entry of a fault timeline: at simulated time At, apply Op.
type Step struct {
	At   float64
	Op   Op
	Node netsim.NodeID // OpCrash, OpRestart
	A, B netsim.NodeID // OpPartition, OpHealLink
	Prob float64       // OpDropAll
}

// Script is a scripted fault timeline.
type Script []Step

// DropAllAt raises the default per-link drop probability to p at time t.
func DropAllAt(t, p float64) Step { return Step{At: t, Op: OpDropAll, Prob: p} }

// CrashAt crashes node id at time t.
func CrashAt(t float64, id netsim.NodeID) Step { return Step{At: t, Op: OpCrash, Node: id} }

// RestartAt restarts node id at time t.
func RestartAt(t float64, id netsim.NodeID) Step { return Step{At: t, Op: OpRestart, Node: id} }

// PartitionAt cuts the link between adjacent nodes a and b at time t.
func PartitionAt(t float64, a, b netsim.NodeID) Step {
	return Step{At: t, Op: OpPartition, A: a, B: b}
}

// HealLinkAt restores the link between a and b at time t.
func HealLinkAt(t float64, a, b netsim.NodeID) Step {
	return Step{At: t, Op: OpHealLink, A: a, B: b}
}

// HealAllAt heals every injected fault at time t.
func HealAllAt(t float64) Step { return Step{At: t, Op: OpHealAll} }

// Validate checks the script against a topology: step times must be
// non-negative, crash/restart targets valid and never the root (the
// stream source is the system's durable ground truth), and partitions
// must name adjacent nodes.
func (sc Script) Validate(top *netsim.Topology) error {
	for i, st := range sc {
		if st.At < 0 {
			return fmt.Errorf("scenario: step %d (%s) at negative time %v", i, st.Op, st.At)
		}
		switch st.Op {
		case OpDropAll:
			if st.Prob < 0 || st.Prob > 1 {
				return fmt.Errorf("scenario: step %d drop probability %v outside [0,1]", i, st.Prob)
			}
		case OpCrash, OpRestart:
			if !top.Valid(st.Node) {
				return fmt.Errorf("scenario: step %d (%s) targets invalid node %d", i, st.Op, st.Node)
			}
			if st.Node == top.Root() {
				return fmt.Errorf("scenario: step %d cannot %s the root (the stream source)", i, st.Op)
			}
		case OpPartition, OpHealLink:
			if !top.Adjacent(st.A, st.B) {
				return fmt.Errorf("scenario: step %d (%s) nodes %d and %d are not adjacent", i, st.Op, st.A, st.B)
			}
		case OpHealAll:
		default:
			return fmt.Errorf("scenario: step %d has unknown op %v", i, st.Op)
		}
	}
	return nil
}

// apply executes one step against the network.
func (st Step) apply(n *netsim.Network) error {
	switch st.Op {
	case OpDropAll:
		return n.SetDropProb(st.Prob)
	case OpCrash:
		return n.Crash(st.Node)
	case OpRestart:
		return n.Restart(st.Node)
	case OpPartition:
		return n.Cut(st.A, st.B)
	case OpHealLink:
		return n.HealLink(st.A, st.B)
	case OpHealAll:
		n.HealAll()
		return nil
	default:
		return fmt.Errorf("scenario: unknown op %v", st.Op)
	}
}

// Deployment is a fault-tolerant protocol deployment the harness can
// drive; satisfied by replication.Faulty, dc.Faulty, and aps.Faulty.
type Deployment interface {
	Name() string
	OnData(v float64)
	OnQuery(at netsim.NodeID, q query.Query) (netsim.Answer, error)
	OnPhaseEnd()
	Engine() *netsim.Engine
}

// Config describes one scenario run end to end.
type Config struct {
	// Protocol selects the deployment: "asr", "dc", or "aps".
	Protocol string
	// Nodes is the size of the complete binary tree topology. 0 means 7.
	Nodes int
	// Seed drives every random choice of the run (network faults and the
	// synthetic data stream). Same seed, same config, same script — same
	// run, byte for byte.
	Seed int64
	// WindowSize is the sliding window size N (power of two >= 4 for the
	// ASR protocol). 0 means 8.
	WindowSize int
	// ValueLo and ValueHi bound the synthetic stream's values. Both zero
	// means [0, 100].
	ValueLo, ValueHi float64
	// DataInterval is the gap between stream arrivals. 0 means 1.
	DataInterval float64
	// DataCount is the number of stream arrivals. 0 means 100.
	DataCount int
	// QueryNodes are the clients probed each interval; nil means every
	// non-root node.
	QueryNodes []netsim.NodeID
	// QueryStart is the arrival index after which probing begins; 0 means
	// WindowSize+1 (the window must fill before queries are legal).
	QueryStart int
	// Probe is the query issued at each probe instant. A zero query means
	// an exponential query over the min(4, WindowSize) newest values with
	// δ=0 — zero tolerance forces every protocol to answer exactly while
	// in sync, which is what lets a faulty run be compared against a
	// fault-free golden twin value-for-value after healing.
	Probe query.Query
	// Faults is the network's baseline link behavior (latency, jitter,
	// ambient loss) present from t=0; the Script layers timed faults on
	// top.
	Faults netsim.LinkFaults
	// Engine tunes the replication transport; WindowSize/ValueLo/ValueHi
	// are filled in from this config.
	Engine netsim.EngineConfig
	// Script is the fault timeline.
	Script Script
	// SettleTime extends the run past the last arrival so retransmissions
	// and resyncs can finish. 0 means 50 time units.
	SettleTime float64
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 7
	}
	if c.WindowSize == 0 {
		c.WindowSize = 8
	}
	if c.ValueLo == 0 && c.ValueHi == 0 {
		c.ValueHi = 100
	}
	if c.DataInterval == 0 {
		c.DataInterval = 1
	}
	if c.DataCount == 0 {
		c.DataCount = 100
	}
	if c.QueryStart == 0 {
		c.QueryStart = c.WindowSize + 1
	}
	if c.SettleTime == 0 {
		c.SettleTime = 50
	}
	if c.Probe.Len() == 0 {
		m := 4
		if c.WindowSize < m {
			m = c.WindowSize
		}
		q, err := query.New(query.Exponential, 0, m, 0)
		if err != nil {
			panic(err) // unreachable: m >= 1
		}
		c.Probe = q
	}
	return c
}

// AnswerRecord is one probe outcome, with the ground-truth value the
// source held at probe time.
type AnswerRecord struct {
	T     float64
	Node  netsim.NodeID
	Ans   netsim.Answer
	Exact float64
	Err   string // non-empty when the probe failed (e.g. node down)
}

// Result is everything a scenario run produced, in canonical
// (byte-comparable) forms.
type Result struct {
	Protocol string
	// Log is the network's canonical message log.
	Log string
	// Counters is the network counter set in canonical form.
	Counters string
	// Answers are the probe outcomes in schedule order.
	Answers []AnswerRecord
	// Violations lists every invariant breach observed during the run;
	// empty on a healthy run.
	Violations []string
}

// AnswersText renders the probe outcomes canonically; byte-identical
// across same-seed runs.
func (r *Result) AnswersText() string {
	var b strings.Builder
	for _, a := range r.Answers {
		if a.Err != "" {
			fmt.Fprintf(&b, "t=%.9g node=%d err=%q\n", a.T, a.Node, a.Err)
			continue
		}
		fmt.Fprintf(&b, "t=%.9g node=%d v=%.9g exact=%.9g stale=%d bound=%.9g degraded=%t\n",
			a.T, a.Node, a.Ans.Value, a.Exact, a.Ans.Staleness, a.Ans.Bound, a.Ans.Degraded)
	}
	return b.String()
}

// AnswersAfter returns the probe outcomes at or after time t.
func (r *Result) AnswersAfter(t float64) []AnswerRecord {
	var out []AnswerRecord
	for _, a := range r.Answers {
		if a.T >= t {
			out = append(out, a)
		}
	}
	return out
}

// Harness wires a scenario Config into a runnable simulation and keeps
// the live objects reachable for post-run assertions.
type Harness struct {
	Cfg Config
	Sim *sim.Simulator
	Net *netsim.Network
	Dep Deployment
}

// New builds the simulator, network, and protocol deployment for cfg.
func New(cfg Config) (*Harness, error) {
	cfg = cfg.withDefaults()
	top, err := netsim.CompleteBinaryTree(cfg.Nodes)
	if err != nil {
		return nil, err
	}
	if err := cfg.Script.Validate(top); err != nil {
		return nil, err
	}
	for _, id := range cfg.QueryNodes {
		if !top.Valid(id) {
			return nil, fmt.Errorf("scenario: invalid query node %d", id)
		}
	}
	if err := cfg.Probe.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: bad probe: %w", err)
	}
	for _, g := range cfg.Probe.Ages {
		if g >= cfg.WindowSize {
			return nil, fmt.Errorf("scenario: probe age %d outside window of %d", g, cfg.WindowSize)
		}
	}
	s := sim.New()
	net, err := netsim.NewNetwork(s, top, cfg.Faults, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ecfg := cfg.Engine
	ecfg.WindowSize = cfg.WindowSize
	ecfg.ValueLo, ecfg.ValueHi = cfg.ValueLo, cfg.ValueHi
	var dep Deployment
	switch cfg.Protocol {
	case "asr":
		dep, err = replication.NewFaulty(net, replication.Options{WindowSize: cfg.WindowSize}, ecfg)
	case "dc":
		dep, err = dc.NewFaulty(net, dc.Options{
			WindowSize: cfg.WindowSize, ValueLo: cfg.ValueLo, ValueHi: cfg.ValueHi,
		}, ecfg)
	case "aps":
		dep, err = aps.NewFaulty(net, aps.Options{WindowSize: cfg.WindowSize}, ecfg)
	default:
		return nil, fmt.Errorf("scenario: unknown protocol %q (want asr, dc, or aps)", cfg.Protocol)
	}
	if err != nil {
		return nil, err
	}
	return &Harness{Cfg: cfg, Sim: s, Net: net, Dep: dep}, nil
}

// Run replays the scenario: the data stream, the probe schedule, and the
// fault script, then a settle period. It returns the run's canonical
// record. Invariants checked along the way — every answered probe must
// satisfy |answer − exact| ≤ bound, and the network's message accounting
// must balance at the end — land in Result.Violations.
func (h *Harness) Run() (*Result, error) {
	cfg := h.Cfg
	res := &Result{Protocol: h.Dep.Name()}

	// The data stream is pre-drawn from its own RNG (disjoint from the
	// network's fault RNG) so the ground truth is identical between a
	// faulty run and its fault-free golden twin.
	dataRng := rand.New(rand.NewSource(cfg.Seed + 1))
	values := make([]float64, cfg.DataCount)
	for i := range values {
		values[i] = cfg.ValueLo + dataRng.Float64()*(cfg.ValueHi-cfg.ValueLo)
	}

	timed, ok := h.Dep.(interface{ SetTime(float64) })
	for i := 0; i < cfg.DataCount; i++ {
		v := values[i]
		if err := h.Sim.At(float64(i+1)*cfg.DataInterval, func() {
			if ok {
				timed.SetTime(h.Sim.Now())
			}
			h.Dep.OnData(v)
		}); err != nil {
			return nil, err
		}
	}

	queryNodes := cfg.QueryNodes
	if queryNodes == nil {
		top := h.Net.Topology()
		for _, id := range top.BFSOrder() {
			if id != top.Root() {
				queryNodes = append(queryNodes, id)
			}
		}
	}
	// Probes run halfway between arrivals, after the window has filled.
	for i := cfg.QueryStart; i <= cfg.DataCount; i++ {
		at := (float64(i) + 0.5) * cfg.DataInterval
		if err := h.Sim.At(at, func() {
			for _, id := range queryNodes {
				h.probe(res, id)
			}
		}); err != nil {
			return nil, err
		}
	}

	for i, st := range cfg.Script {
		st := st
		idx := i
		if err := h.Sim.At(st.At, func() {
			if err := st.apply(h.Net); err != nil {
				res.Violations = append(res.Violations,
					fmt.Sprintf("step %d (%s) failed: %v", idx, st.Op, err))
			}
		}); err != nil {
			return nil, err
		}
	}

	h.Sim.RunUntil(float64(cfg.DataCount)*cfg.DataInterval + cfg.SettleTime)

	if err := h.Net.AccountingError(); err != nil {
		res.Violations = append(res.Violations, err.Error())
	}
	res.Log = h.Net.FormatLog()
	res.Counters = h.Net.Counters().String()
	return res, nil
}

// probe issues the configured probe query at one node and records the
// outcome, checking the answer-bound invariant against the source's
// ground truth.
func (h *Harness) probe(res *Result, id netsim.NodeID) {
	now := h.Sim.Now()
	exact, err := query.Exact(h.Dep.Engine().SourceWindow(), h.Cfg.Probe)
	if err != nil {
		res.Violations = append(res.Violations,
			fmt.Sprintf("t=%.9g exact evaluation failed: %v", now, err))
		return
	}
	rec := AnswerRecord{T: now, Node: id, Exact: exact}
	ans, err := h.Dep.OnQuery(id, h.Cfg.Probe)
	if err != nil {
		// An explicit refusal (e.g. the node is down) is graceful
		// degradation, not a violation; a silent wrong answer would be.
		rec.Err = err.Error()
		res.Answers = append(res.Answers, rec)
		return
	}
	rec.Ans = ans
	res.Answers = append(res.Answers, rec)
	const eps = 1e-9
	if diff := ans.Value - exact; diff > ans.Bound+eps || diff < -ans.Bound-eps {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"t=%.9g node=%d answer %v strays %v from exact %v, beyond its bound %v",
			now, id, ans.Value, diff, exact, ans.Bound))
	}
}

// Run is the one-shot convenience: build the harness and replay it.
func Run(cfg Config) (*Result, error) {
	h, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return h.Run()
}
