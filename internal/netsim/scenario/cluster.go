package scenario

// Deterministic failure coverage for the cluster scatter-gather
// protocol (internal/cluster), exercised over the fault-injected
// network before any socket exists. The topology is a star: the root
// is the cluster client and stream source, each child is one shard
// node holding per-stream SWAT trees. Placement uses the real
// consistent-hash ring; gathers use the real merge/stand-in algebra
// (core.AdvanceSummary / core.UnknownSummary). What the simulation
// replaces is only the transport — wire frames become netsim messages
// subject to scripted partitions, crashes, and drops — so the
// invariant this harness pins ("a quorum gather's bound always covers
// the truth, however degraded the fleet") is a property of the
// protocol, not of healthy TCP.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"github.com/streamsum/swat/internal/cluster"
	"github.com/streamsum/swat/internal/core"
	"github.com/streamsum/swat/internal/netsim"
	"github.com/streamsum/swat/internal/sim"
)

// ClusterConfig describes one cluster scatter-gather scenario.
type ClusterConfig struct {
	// Shards is the number of shard nodes (star leaves). 0 means 3.
	Shards int
	// Streams names the logical streams; nil means 6 streams s0..s5.
	Streams []string
	// Seed drives the ring placement, the fault RNG, and the synthetic
	// data. Same seed, same config, same script — same run.
	Seed int64
	// WindowSize/Coefficients/MinLevel fix every tree's geometry.
	// Zero means 16/4/2 — MinLevel 2 keeps a ring of 8 raw values, so
	// fresh-age probes on healthy shards are exact and every non-zero
	// bound in a run is attributable to injected faults.
	WindowSize   int
	Coefficients int
	MinLevel     int
	// ValueLo/ValueHi bound the synthetic values (and declare the
	// widening range). Both zero means [0, 100].
	ValueLo, ValueHi float64
	// DataInterval is the gap between arrival rows; 0 means 1.
	DataInterval float64
	// DataCount is the number of rows (one value per stream per row).
	// 0 means 100.
	DataCount int
	// ProbeStart is the row after which gather probes begin; 0 means
	// WindowSize+1.
	ProbeStart int
	// ProbeEvery probes every k-th row; 0 means 4.
	ProbeEvery int
	// ProbeAge is the age of the bounded point query each gather
	// answers (0 = newest value).
	ProbeAge int
	// GatherWait is how long the client waits for summary responses
	// before folding what it has; 0 means 2 time units.
	GatherWait float64
	// Quorum is the minimum number of shards that must respond for the
	// gather to answer; 0 means a majority.
	Quorum int
	// Faults is the ambient link behavior; Script layers timed faults.
	Faults netsim.LinkFaults
	Script Script
	// SettleTime extends the run past the last row; 0 means 20.
	SettleTime float64
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Shards == 0 {
		c.Shards = 3
	}
	if c.Streams == nil {
		for i := 0; i < 6; i++ {
			c.Streams = append(c.Streams, fmt.Sprintf("s%d", i))
		}
	}
	if c.WindowSize == 0 {
		c.WindowSize = 16
	}
	if c.Coefficients == 0 {
		c.Coefficients = 4
	}
	if c.MinLevel == 0 {
		c.MinLevel = 2
	}
	if c.ValueLo == 0 && c.ValueHi == 0 {
		c.ValueHi = 100
	}
	if c.DataInterval == 0 {
		c.DataInterval = 1
	}
	if c.DataCount == 0 {
		c.DataCount = 100
	}
	if c.ProbeStart == 0 {
		c.ProbeStart = c.WindowSize + 1
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = 4
	}
	if c.GatherWait == 0 {
		c.GatherWait = 2
	}
	if c.Quorum == 0 {
		c.Quorum = c.Shards/2 + 1
	}
	if c.SettleTime == 0 {
		c.SettleTime = 20
	}
	return c
}

// ClusterProbe is one gather's outcome against ground truth.
type ClusterProbe struct {
	T float64
	// Value/Bound are the folded tree's bounded point answer for the
	// cluster-wide sum; meaningful when Quorum is true.
	Value, Bound float64
	// Exact is what a fault-free twin answers: one tree of the same
	// geometry fed the aligned per-row sum of every stream (including
	// values the faults ate), queried at the same age. The wavelet
	// transform is linear, so a healthy fleet's fold equals this twin
	// bit for bit; Bound's contract is to cover the gap a degraded
	// fleet opens against it.
	Exact float64
	// Missing lists streams answered by stand-ins, sorted; Advanced
	// lists streams whose shard summary lagged and was fast-forwarded.
	Missing  []string
	Advanced []string
	// Answered counts shards whose summaries arrived in time; Quorum
	// reports whether that met the configured quorum (if not, the
	// gather withholds its answer instead of guessing).
	Answered int
	Quorum   bool
	Err      string
}

// ClusterResult is a cluster scenario's canonical record.
type ClusterResult struct {
	Log        string
	Counters   string
	Probes     []ClusterProbe
	Violations []string
	// Placement maps stream → shard name, for test assertions.
	Placement map[string]string
}

// ProbesText renders the probe outcomes canonically; byte-identical
// across same-seed runs.
func (r *ClusterResult) ProbesText() string {
	var b strings.Builder
	for _, p := range r.Probes {
		if p.Err != "" {
			fmt.Fprintf(&b, "t=%.9g answered=%d err=%q\n", p.T, p.Answered, p.Err)
			continue
		}
		fmt.Fprintf(&b, "t=%.9g v=%.9g bound=%.9g exact=%.9g answered=%d missing=%v advanced=%v\n",
			p.T, p.Value, p.Bound, p.Exact, p.Answered, p.Missing, p.Advanced)
	}
	return b.String()
}

// Message payloads. The summary response carries canonical encodings
// rather than live pointers: shards and client share a process here,
// and encoding round-trips are exactly what the wire does.
type cdataMsg struct {
	Stream string
	V      float64
}

type csumReq struct{ ID int }

type csumRes struct {
	ID    int
	Shard netsim.NodeID
	Names []string
	Sums  [][]byte
}

// clusterShard is one shard node's volatile state.
type clusterShard struct {
	trees map[string]*core.Tree
}

// clusterHarness wires the pieces together.
type clusterHarness struct {
	cfg    ClusterConfig
	sim    *sim.Simulator
	net    *netsim.Network
	opts   core.Options
	mopts  core.MergeOptions
	ring   *cluster.Ring
	owner  map[string]netsim.NodeID // stream → shard node
	shards map[netsim.NodeID]*clusterShard

	seq     uint64
	sent    map[string]int64     // client-side shipped counts
	history map[string][]float64 // ground truth per stream

	gathers map[int]*gather
	nextID  int
	res     *ClusterResult
}

// gather is one in-flight scatter-gather probe. sent snapshots the
// client's shipped counts at scatter time: the fold reconciles
// summaries (and scores itself against ground truth) as of the moment
// the probe was issued, not the moment responses finished trickling
// in — rows shipped during GatherWait belong to the next probe.
type gather struct {
	responses map[netsim.NodeID]csumRes
	sent      map[string]int64
}

// shardName names a shard node on the ring.
func shardName(id netsim.NodeID) string { return fmt.Sprintf("shard%d", id) }

// RunCluster replays one cluster scenario and returns its canonical
// record. Invariants: every quorum answer satisfies
// |Value − Exact| ≤ Bound (+ε), and the network accounting balances.
func RunCluster(cfg ClusterConfig) (*ClusterResult, error) {
	cfg = cfg.withDefaults()
	top := netsim.NewTopology()
	var shardIDs []netsim.NodeID
	for i := 0; i < cfg.Shards; i++ {
		id, err := top.AddChild(top.Root())
		if err != nil {
			return nil, err
		}
		shardIDs = append(shardIDs, id)
	}
	if err := cfg.Script.Validate(top); err != nil {
		return nil, err
	}
	names := make([]string, len(shardIDs))
	byName := make(map[string]netsim.NodeID, len(shardIDs))
	for i, id := range shardIDs {
		names[i] = shardName(id)
		byName[names[i]] = id
	}
	ring, err := cluster.NewRing(cfg.Seed, 16, names)
	if err != nil {
		return nil, err
	}
	s := sim.New()
	net, err := netsim.NewNetwork(s, top, cfg.Faults, cfg.Seed)
	if err != nil {
		return nil, err
	}
	h := &clusterHarness{
		cfg:     cfg,
		sim:     s,
		net:     net,
		opts:    core.Options{WindowSize: cfg.WindowSize, Coefficients: cfg.Coefficients, MinLevel: cfg.MinLevel},
		mopts:   core.MergeOptions{ValueLo: cfg.ValueLo, ValueHi: cfg.ValueHi},
		ring:    ring,
		owner:   make(map[string]netsim.NodeID, len(cfg.Streams)),
		shards:  make(map[netsim.NodeID]*clusterShard, len(shardIDs)),
		sent:    make(map[string]int64, len(cfg.Streams)),
		history: make(map[string][]float64, len(cfg.Streams)),
		gathers: make(map[int]*gather),
		res:     &ClusterResult{Placement: make(map[string]string, len(cfg.Streams))},
	}
	if _, err := core.New(h.opts); err != nil {
		return nil, err
	}
	for _, st := range cfg.Streams {
		own := ring.Owner(st)
		h.owner[st] = byName[own]
		h.res.Placement[st] = own
	}
	for _, id := range shardIDs {
		h.shards[id] = &clusterShard{trees: make(map[string]*core.Tree)}
		id := id
		if err := net.Subscribe(id, "cdata", func(m netsim.Message) { h.onData(id, m) }); err != nil {
			return nil, err
		}
		if err := net.Subscribe(id, "csum", func(m netsim.Message) { h.onSumReq(id, m) }); err != nil {
			return nil, err
		}
	}
	if err := net.Subscribe(top.Root(), "csumres", func(m netsim.Message) { h.onSumRes(m) }); err != nil {
		return nil, err
	}
	// A crash loses the shard's volatile trees; restart comes back
	// empty-handed, exactly like a swatd without a durable store.
	net.OnCrash = func(id netsim.NodeID) {
		if sh := h.shards[id]; sh != nil {
			sh.trees = make(map[string]*core.Tree)
		}
	}
	return h.run()
}

// onData applies one value to the shard's stream tree.
func (h *clusterHarness) onData(id netsim.NodeID, m netsim.Message) {
	d, ok := m.Payload.(cdataMsg)
	if !ok {
		h.res.Violations = append(h.res.Violations, fmt.Sprintf("shard %d: bad cdata payload %T", id, m.Payload))
		return
	}
	sh := h.shards[id]
	tr, ok := sh.trees[d.Stream]
	if !ok {
		var err error
		if tr, err = core.New(h.opts); err != nil {
			h.res.Violations = append(h.res.Violations, err.Error())
			return
		}
		sh.trees[d.Stream] = tr
	}
	tr.Update(d.V)
}

// onSumReq answers a summary request with every local stream's
// canonical encoding, sorted by name for a deterministic reply.
func (h *clusterHarness) onSumReq(id netsim.NodeID, m netsim.Message) {
	req, ok := m.Payload.(csumReq)
	if !ok {
		h.res.Violations = append(h.res.Violations, fmt.Sprintf("shard %d: bad csum payload %T", id, m.Payload))
		return
	}
	sh := h.shards[id]
	res := csumRes{ID: req.ID, Shard: id}
	names := make([]string, 0, len(sh.trees))
	for name := range sh.trees {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		res.Names = append(res.Names, name)
		res.Sums = append(res.Sums, sh.trees[name].AppendSummary(nil))
	}
	h.seq++
	h.net.Send(id, h.net.Topology().Root(), "csumres", h.seq, res)
}

// onSumRes records a shard's response into its gather, if still open.
func (h *clusterHarness) onSumRes(m netsim.Message) {
	res, ok := m.Payload.(csumRes)
	if !ok {
		h.res.Violations = append(h.res.Violations, fmt.Sprintf("client: bad csumres payload %T", m.Payload))
		return
	}
	if g := h.gathers[res.ID]; g != nil {
		g.responses[res.Shard] = res
	}
}

// run schedules the data stream, probes, and fault script, then
// settles.
func (h *clusterHarness) run() (*ClusterResult, error) {
	cfg := h.cfg
	root := h.net.Topology().Root()
	dataRng := rand.New(rand.NewSource(cfg.Seed + 1))
	rows := make([][]float64, cfg.DataCount)
	for i := range rows {
		rows[i] = make([]float64, len(cfg.Streams))
		for j := range rows[i] {
			rows[i][j] = cfg.ValueLo + dataRng.Float64()*(cfg.ValueHi-cfg.ValueLo)
		}
	}
	for i := 0; i < cfg.DataCount; i++ {
		i := i
		if err := h.sim.At(float64(i+1)*cfg.DataInterval, func() {
			for j, st := range cfg.Streams {
				v := rows[i][j]
				h.history[st] = append(h.history[st], v)
				h.sent[st]++
				h.seq++
				h.net.Send(root, h.owner[st], "cdata", h.seq, cdataMsg{Stream: st, V: v})
			}
		}); err != nil {
			return nil, err
		}
	}
	for i := cfg.ProbeStart; i <= cfg.DataCount; i += cfg.ProbeEvery {
		at := (float64(i) + 0.5) * cfg.DataInterval
		if err := h.sim.At(at, func() { h.scatter() }); err != nil {
			return nil, err
		}
	}
	for i, st := range cfg.Script {
		st, idx := st, i
		if err := h.sim.At(st.At, func() {
			if err := st.apply(h.net); err != nil {
				h.res.Violations = append(h.res.Violations,
					fmt.Sprintf("step %d (%s) failed: %v", idx, st.Op, err))
			}
		}); err != nil {
			return nil, err
		}
	}
	h.sim.RunUntil(float64(cfg.DataCount)*cfg.DataInterval + cfg.SettleTime)
	if err := h.net.AccountingError(); err != nil {
		h.res.Violations = append(h.res.Violations, err.Error())
	}
	h.res.Log = h.net.FormatLog()
	h.res.Counters = h.net.Counters().String()
	return h.res, nil
}

// scatter opens a gather: a summary request to every shard, and a fold
// scheduled GatherWait later over whatever responded.
func (h *clusterHarness) scatter() {
	id := h.nextID
	h.nextID++
	sent := make(map[string]int64, len(h.sent))
	for _, st := range h.cfg.Streams {
		sent[st] = h.sent[st]
	}
	h.gathers[id] = &gather{responses: make(map[netsim.NodeID]csumRes), sent: sent}
	root := h.net.Topology().Root()
	for _, sid := range shardOrder(h.shards) {
		h.seq++
		h.net.Send(root, sid, "csum", h.seq, csumReq{ID: id})
	}
	if err := h.sim.At(h.sim.Now()+h.cfg.GatherWait, func() { h.fold(id) }); err != nil {
		h.res.Violations = append(h.res.Violations, err.Error())
	}
}

// shardOrder returns shard IDs ascending (map iteration is not
// deterministic; the send schedule must be).
func shardOrder(shards map[netsim.NodeID]*clusterShard) []netsim.NodeID {
	out := make([]netsim.NodeID, 0, len(shards))
	for id := range shards {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// fold closes a gather: decode responses, advance lagging summaries to
// the shipped counts, stand in for missing streams, merge in sorted
// stream order, and check the bound invariant against ground truth.
func (h *clusterHarness) fold(id int) {
	g := h.gathers[id]
	delete(h.gathers, id)
	now := h.sim.Now()
	probe := ClusterProbe{T: now, Answered: len(g.responses)}

	// Index every summary that arrived: stream → canonical bytes.
	arrived := make(map[string][]byte)
	for _, sid := range shardOrder(h.shards) {
		res, ok := g.responses[sid]
		if !ok {
			continue
		}
		for i, name := range res.Names {
			arrived[name] = res.Sums[i]
		}
	}
	if probe.Answered < h.cfg.Quorum {
		probe.Err = fmt.Sprintf("below quorum: %d of %d shards answered, need %d",
			probe.Answered, len(h.shards), h.cfg.Quorum)
		h.res.Probes = append(h.res.Probes, probe)
		return
	}
	probe.Quorum = true

	streams := append([]string(nil), h.cfg.Streams...)
	sort.Strings(streams)
	fail := func(err error) {
		probe.Err = err.Error()
		h.res.Probes = append(h.res.Probes, probe)
		h.res.Violations = append(h.res.Violations, fmt.Sprintf("t=%.9g fold failed: %v", now, err))
	}
	// Decode what arrived, then pick one common arrival target for the
	// fold: the scatter-time shipped count, or further if some shard's
	// reply already covers rows shipped after the scatter. Every
	// summary short of the target is fast-forwarded (tainted), so the
	// merged answer is "the fleet as of arrival T" — a well-defined
	// instant the ground-truth check can score against.
	decoded := make(map[string]*core.Summary, len(arrived))
	var target int64
	for _, st := range streams {
		if n := g.sent[st]; n > target {
			target = n
		}
		enc, ok := arrived[st]
		if !ok {
			continue
		}
		sum, err := core.DecodeSummary(enc)
		if err != nil {
			fail(fmt.Errorf("stream %q: %w", st, err))
			return
		}
		decoded[st] = sum
		if sum.Arrivals > target {
			target = sum.Arrivals
		}
	}
	var tr *core.Tree
	for _, st := range streams {
		sum, ok := decoded[st]
		var err error
		if ok {
			if sum.Arrivals < target {
				probe.Advanced = append(probe.Advanced, st)
				if sum, err = core.AdvanceSummary(sum, target, h.mopts); err != nil {
					fail(fmt.Errorf("stream %q: %w", st, err))
					return
				}
			}
		} else {
			probe.Missing = append(probe.Missing, st)
			if target == 0 {
				continue
			}
			if sum, err = core.UnknownSummary(h.opts, 1, target, h.mopts); err != nil {
				fail(fmt.Errorf("stream %q: %w", st, err))
				return
			}
		}
		if tr == nil {
			tr, err = core.FromSummary(sum)
		} else {
			err = tr.MergeSummary(sum, h.mopts)
		}
		if err != nil {
			fail(fmt.Errorf("stream %q: %w", st, err))
			return
		}
	}
	if tr == nil {
		probe.Err = "no data"
		h.res.Probes = append(h.res.Probes, probe)
		return
	}
	val, bound, err := tr.BoundedPoint(h.cfg.ProbeAge)
	if err != nil {
		probe.Err = err.Error()
		h.res.Probes = append(h.res.Probes, probe)
		return
	}
	probe.Value, probe.Bound = val, bound
	twin, err := core.New(h.opts)
	if err != nil {
		fail(err)
		return
	}
	for i := int64(0); i < target; i++ {
		var row float64
		for _, st := range streams {
			row += h.history[st][i]
		}
		twin.Update(row)
	}
	exact, _, err := twin.BoundedPoint(h.cfg.ProbeAge)
	if err != nil {
		fail(fmt.Errorf("twin query: %w", err))
		return
	}
	probe.Exact = exact
	h.res.Probes = append(h.res.Probes, probe)
	const eps = 1e-9
	if diff := val - exact; diff > bound+eps || diff < -bound-eps {
		h.res.Violations = append(h.res.Violations, fmt.Sprintf(
			"t=%.9g gather answer %v strays %v from the fault-free twin's %v, beyond its bound %v",
			now, val, diff, exact, bound))
	}
}
