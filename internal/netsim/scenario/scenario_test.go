package scenario

import (
	"strings"
	"testing"

	"github.com/streamsum/swat/internal/netsim"
)

// protocols under test; every scenario test exercises all three
// fault-tolerant deployments.
var protocols = []string{"asr", "dc", "aps"}

// faultyConfig is the shared drop + crash + partition + heal timeline:
// ambient 25% loss from t=30, node 3 partitioned behind its parent at
// t=40, node 2 crashed at t=50 and restarted at t=70, everything healed
// at t=80, with the stream running to t=120.
func faultyConfig(protocol string, seed int64) Config {
	return Config{
		Protocol:  protocol,
		Seed:      seed,
		DataCount: 120,
		Faults:    netsim.LinkFaults{LatencyBase: 0.01, LatencyJitter: 0.02},
		Script: Script{
			DropAllAt(30, 0.25),
			PartitionAt(40, 1, 3),
			CrashAt(50, 2),
			RestartAt(70, 2),
			HealAllAt(80),
		},
	}
}

// goldenConfig is the fault-free twin: same seed (same data stream),
// same latency, no loss, no script.
func goldenConfig(protocol string, seed int64) Config {
	cfg := faultyConfig(protocol, seed)
	cfg.Script = nil
	return cfg
}

func TestScriptValidation(t *testing.T) {
	top, err := netsim.CompleteBinaryTree(7)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Script{
		{CrashAt(10, 0)},       // the root (stream source) must stay up
		{RestartAt(10, 0)},     // ... and cannot "restart"
		{CrashAt(-1, 2)},       // negative time
		{CrashAt(5, 99)},       // invalid node
		{PartitionAt(5, 0, 6)}, // not adjacent
		{DropAllAt(5, 1.5)},    // probability out of range
		{{At: 5, Op: Op(42)}},  // unknown op
		{HealLinkAt(5, 3, 4)},  // not adjacent (siblings)
	}
	for i, sc := range bad {
		if err := sc.Validate(top); err == nil {
			t.Errorf("script %d validated but should not have", i)
		}
	}
	good := Script{DropAllAt(0, 0.5), CrashAt(1, 6), RestartAt(2, 6), PartitionAt(3, 0, 1), HealLinkAt(4, 0, 1), HealAllAt(5)}
	if err := good.Validate(top); err != nil {
		t.Errorf("good script rejected: %v", err)
	}
}

func TestHarnessRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Protocol: "quic"}); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := New(Config{Protocol: "asr", QueryNodes: []netsim.NodeID{99}}); err == nil {
		t.Error("invalid query node accepted")
	}
	if _, err := New(faultyConfig("asr", 1)); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestScenarioDeterminism replays the same seed + fault script twice per
// protocol and requires byte-identical message logs, counters, and
// answer records.
func TestScenarioDeterminism(t *testing.T) {
	for _, p := range protocols {
		p := p
		t.Run(p, func(t *testing.T) {
			r1, err := Run(faultyConfig(p, 42))
			if err != nil {
				t.Fatalf("run 1: %v", err)
			}
			r2, err := Run(faultyConfig(p, 42))
			if err != nil {
				t.Fatalf("run 2: %v", err)
			}
			if r1.Log != r2.Log {
				t.Error("same-seed runs produced different message logs")
			}
			if r1.Counters != r2.Counters {
				t.Errorf("same-seed runs produced different counters:\n%s\n%s", r1.Counters, r2.Counters)
			}
			if r1.AnswersText() != r2.AnswersText() {
				t.Error("same-seed runs produced different answers")
			}
			// A different seed must actually change the fault draws.
			r3, err := Run(faultyConfig(p, 43))
			if err != nil {
				t.Fatalf("run 3: %v", err)
			}
			if r1.Log == r3.Log {
				t.Error("different seeds produced identical logs")
			}
		})
	}
}

// TestReconvergenceToGolden is the end-to-end failure test: after the
// drop/crash/partition timeline heals, every protocol must answer the
// δ=0 probes with exactly the values its fault-free golden twin
// produces, and every replica must hold the source window verbatim.
func TestReconvergenceToGolden(t *testing.T) {
	// Probes after t=95 are past the heal (t=80) plus one watchdog period
	// and a resync round trip.
	const settled = 95.0
	for _, p := range protocols {
		p := p
		t.Run(p, func(t *testing.T) {
			fh, err := New(faultyConfig(p, 42))
			if err != nil {
				t.Fatal(err)
			}
			faulty, err := fh.Run()
			if err != nil {
				t.Fatal(err)
			}
			golden, err := Run(goldenConfig(p, 42))
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range []*Result{faulty, golden} {
				if len(r.Violations) != 0 {
					t.Fatalf("invariant violations: %v", r.Violations)
				}
			}

			// The faults must have actually bitten: degraded answers or
			// explicit refusals during the fault window.
			hurt := 0
			for _, a := range faulty.Answers {
				if a.T < settled && (a.Err != "" || a.Ans.Degraded) {
					hurt++
				}
			}
			if hurt == 0 {
				t.Error("fault timeline left no trace in the answers; scenario too tame to test recovery")
			}
			if !strings.Contains(faulty.Log, "drop") || !strings.Contains(faulty.Log, "cut") {
				t.Error("message log records no drops/cuts under the fault script")
			}

			// Post-heal, the faulty run reconverges to the golden run
			// value-for-value.
			fa, ga := faulty.AnswersAfter(settled), golden.AnswersAfter(settled)
			if len(fa) == 0 || len(fa) != len(ga) {
				t.Fatalf("post-heal answer counts differ: faulty %d, golden %d", len(fa), len(ga))
			}
			for i := range fa {
				f, g := fa[i], ga[i]
				if f.T != g.T || f.Node != g.Node {
					t.Fatalf("probe schedules diverged: %+v vs %+v", f, g)
				}
				if f.Err != "" || g.Err != "" {
					t.Fatalf("post-heal probe failed: faulty=%q golden=%q", f.Err, g.Err)
				}
				if f.Ans.Value != g.Ans.Value {
					t.Errorf("t=%v node=%d: faulty answer %v != golden %v",
						f.T, f.Node, f.Ans.Value, g.Ans.Value)
				}
				if f.Ans.Degraded || f.Ans.Staleness != 0 {
					t.Errorf("t=%v node=%d still degraded after heal: %+v", f.T, f.Node, f.Ans)
				}
			}

			// Replica-level reconvergence: every client's window equals
			// the source's, byte for byte.
			if err := fh.Dep.Engine().Converged(); err != nil {
				t.Errorf("replicas did not reconverge: %v", err)
			}
			if err := fh.Net.AccountingError(); err != nil {
				t.Errorf("message accounting: %v", err)
			}
		})
	}
}

// TestStalenessBoundUnderPermanentPartition checks graceful degradation:
// clients stranded behind a never-healed partition keep answering, but
// every answer is flagged degraded and carries a bound that provably
// contains the true value — no silent wrong answers.
func TestStalenessBoundUnderPermanentPartition(t *testing.T) {
	for _, p := range protocols {
		p := p
		t.Run(p, func(t *testing.T) {
			cfg := Config{
				Protocol:  p,
				Seed:      7,
				DataCount: 80,
				Faults:    netsim.LinkFaults{LatencyBase: 0.01},
				// Nodes 1, 3, 4 end up stranded behind the cut edge 0-1.
				Script: Script{PartitionAt(40, 0, 1)},
			}
			h, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := h.Run()
			if err != nil {
				t.Fatal(err)
			}
			// The harness checks |answer − exact| ≤ bound at every single
			// probe; violations would have been recorded.
			if len(res.Violations) != 0 {
				t.Fatalf("bound violations under partition: %v", res.Violations)
			}
			degraded := 0
			for _, a := range res.AnswersAfter(60) {
				stranded := a.Node == 1 || a.Node == 3 || a.Node == 4
				if !stranded {
					if a.Err != "" || a.Ans.Degraded {
						t.Errorf("t=%v node=%d on the source side degraded: %+v err=%q", a.T, a.Node, a.Ans, a.Err)
					}
					continue
				}
				if a.Err != "" {
					t.Errorf("t=%v node=%d refused instead of degrading: %v", a.T, a.Node, a.Err)
					continue
				}
				degraded++
				if !a.Ans.Degraded {
					t.Errorf("t=%v node=%d stale answer not flagged degraded", a.T, a.Node)
				}
				if a.Ans.Staleness <= 0 {
					t.Errorf("t=%v node=%d degraded answer reports staleness %d", a.T, a.Node, a.Ans.Staleness)
				}
				// Once staleness exceeds every probe age, the documented
				// bound is Σ|wᵢ|·(hi−lo)/2 = (1+½+¼+⅛)·50 = 93.75.
				if a.Ans.Staleness >= 4 && a.Ans.Bound != 93.75 {
					t.Errorf("t=%v node=%d bound = %v, want 93.75", a.T, a.Node, a.Ans.Bound)
				}
			}
			if degraded == 0 {
				t.Fatal("no degraded answers recorded behind a permanent partition")
			}
			// Converged must detect the un-healed lag.
			if err := h.Dep.Engine().Converged(); err == nil {
				t.Error("Converged reported success despite a permanent partition")
			}
		})
	}
}
