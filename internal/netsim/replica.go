package netsim

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"path/filepath"

	"github.com/streamsum/swat/internal/core"
	"github.com/streamsum/swat/internal/durable"
	"github.com/streamsum/swat/internal/metrics"
	"github.com/streamsum/swat/internal/query"
	"github.com/streamsum/swat/internal/stream"
)

// This file implements the replication transport shared by the
// fault-tolerant deployments of SWAT-ASR, Divergence Caching, and APS
// (the Faulty types in internal/replication, internal/dc, internal/aps):
// the source's sliding window is replicated to every client over reliable
// flows, and a client that has missed updates degrades gracefully — it
// answers from its last-known replica and reports a quantified staleness
// and error bound instead of a silently wrong value.
//
// Update protocol. Every source arrival is pushed to each client as an
// updMsg stamped with the source arrival counter. Clients apply updates
// in arrival order, buffering small reorderings. When a client falls
// behind — retries exhausted during a partition, a crash wiping its
// volatile state, or too many buffered gaps — a periodic watchdog sends a
// resync request and the source replies with a full window snapshot.
//
// Staleness bound. A replica that last applied arrival a while the
// source is at arrival A is s = A - a arrivals stale. Each arrival
// shifts the window by one position, so the value now at age g was at
// age g-s when the replica was current: for g >= s it is known exactly
// from the replica; for g < s it arrived after the last sync and is
// unknown. Unknown entries are answered with the midpoint of the
// declared value range [lo, hi], so the answer error is at most
// Σ_{i: unknown} |w_i| · (hi-lo)/2 — the bound reported with the answer.

// Engine counter names.
const (
	CntResyncReq  = "eng_resync_req"  // resync requests issued by clients
	CntResyncSnap = "eng_resync_snap" // window snapshots served by the source
	CntResyncSum  = "eng_resync_sum"  // encoded summaries served by the source
	CntStaleQ     = "eng_stale_query" // queries answered from a stale replica
	CntFreshQ     = "eng_fresh_query" // queries answered fully in sync
)

// updMsg replicates one source arrival.
type updMsg struct {
	Arrival uint64
	Value   float64
}

// snapMsg carries a full window snapshot for resynchronization.
type snapMsg struct {
	Arrival uint64
	Values  []float64 // newest first, as stream.Window.Values returns
}

// sumMsg carries the source tree's encoded summary — O(k log N) bytes
// instead of snapMsg's N raw values — for summary-mode repair.
type sumMsg struct {
	Arrival uint64
	Frame   []byte // one core.AppendSummary codec frame
}

// reqMsg asks the source for a snapshot.
type reqMsg struct {
	Have uint64 // the requester's last applied arrival
}

// Answer is a fault-aware query result: the value plus an explicit bound
// on how far it can be from the exact fault-free answer.
type Answer struct {
	// Value is the computed answer.
	Value float64
	// Staleness is the number of source arrivals the serving replica had
	// not yet applied (0 when fully in sync).
	Staleness int
	// Bound is a guaranteed bound on |Value - exact|: the staleness bound
	// for degraded answers, or the query's own precision δ for answers
	// delegated to the underlying protocol while in sync.
	Bound float64
	// Degraded reports that the answer was served from a stale replica
	// rather than by the wrapped protocol.
	Degraded bool
}

// EngineConfig configures a replica engine.
type EngineConfig struct {
	// WindowSize is the replicated sliding window's size N.
	WindowSize int
	// ValueLo and ValueHi declare the stream's value range, used for the
	// staleness bound of unknown entries.
	ValueLo, ValueHi float64
	// Flow tunes the reliable flows (retry/backoff budget).
	Flow FlowConfig
	// WatchdogPeriod is the interval of each client's resync watchdog.
	// 0 means 10 time units.
	WatchdogPeriod float64
	// LagTolerance is the staleness (in arrivals) the watchdog tolerates
	// before requesting a resync; small lags heal by themselves through
	// retransmissions. 0 means 4.
	LagTolerance int
	// ReorderLimit caps the out-of-order update buffer; exceeding it
	// triggers an immediate resync request. 0 means 32.
	ReorderLimit int
	// DataDir, when non-empty, gives every client replica a durable
	// window log under DataDir/node-<id>: applied updates are logged,
	// resync snapshots checkpoint the log, and a restarted node
	// recovers its window and applied arrival counter from disk — so it
	// resyncs only the arrivals it actually missed instead of the whole
	// window. (The simulator models restart recovery; media-level
	// corruption is the durable package's own test territory.)
	DataDir string
	// Durable tunes the per-node window logs (checkpoint cadence,
	// fsync policy, segment size). Ignored unless DataDir is set.
	Durable durable.Options
	// Summary, when non-nil, switches the engine to summary-shipping
	// mode: the replicated state is a SWAT tree of this geometry
	// instead of the raw window, and resynchronization ships the
	// source tree's compact encoded summary — O(k log N) bytes — as
	// the repair fast path rather than all N window values. A repaired
	// replica is reconstructed from the summary and, because the
	// encoding is canonical, stays bit-identical to the source tree
	// under the same subsequent updates (Converged checks exactly
	// that). Summary.WindowSize must equal WindowSize (0 adopts it).
	// Incompatible with DataDir: the window logs replay raw values and
	// cannot capture tree state.
	Summary *core.Options
}

func (c EngineConfig) withDefaults() (EngineConfig, error) {
	if c.WindowSize < 1 {
		return c, fmt.Errorf("netsim: engine window size %d", c.WindowSize)
	}
	if !(c.ValueHi > c.ValueLo) {
		return c, fmt.Errorf("netsim: engine value range [%v,%v]", c.ValueLo, c.ValueHi)
	}
	if c.WatchdogPeriod == 0 {
		c.WatchdogPeriod = 10
	}
	if c.WatchdogPeriod < 0 {
		return c, fmt.Errorf("netsim: negative watchdog period %v", c.WatchdogPeriod)
	}
	if c.LagTolerance == 0 {
		c.LagTolerance = 4
	}
	if c.ReorderLimit == 0 {
		c.ReorderLimit = 32
	}
	if c.Summary != nil {
		if c.DataDir != "" {
			return c, fmt.Errorf("netsim: summary-shipping mode is incompatible with DataDir (window logs replay raw values, not tree state)")
		}
		sopts := *c.Summary
		if sopts.WindowSize == 0 {
			sopts.WindowSize = c.WindowSize
		}
		if sopts.WindowSize != c.WindowSize {
			return c, fmt.Errorf("netsim: summary window size %d differs from engine window size %d", sopts.WindowSize, c.WindowSize)
		}
		if _, err := core.New(sopts); err != nil {
			return c, fmt.Errorf("netsim: summary geometry: %w", err)
		}
		c.Summary = &sopts
	}
	return c, nil
}

// clientReplica is one client's last-known copy of the source window.
type clientReplica struct {
	win     *stream.Window
	arrival uint64             // source arrival counter of the newest applied value
	buf     map[uint64]float64 // out-of-order updates keyed by arrival
	lastReq float64            // time of the last resync request
	reqEver bool               // whether a resync was ever requested
	upd     *Flow              // source -> client
	req     *Flow              // client -> source

	// tree replaces win as the replicated state in summary mode (nil
	// otherwise); the window stays empty there.
	tree *core.Tree

	// Durable mode only: the node's window log, its directory (for the
	// restart re-open), and what the last open recovered.
	log       *durable.WindowLog
	logDir    string
	recovered durable.WindowRecovery
}

// Engine replicates the source sliding window to every non-root node of
// the topology over the fault-injected network and serves
// staleness-bounded answers for clients that fall behind.
type Engine struct {
	net  *Network
	cfg  EngineConfig
	src  *stream.Window
	arr  uint64
	reps []*clientReplica // indexed by NodeID; nil for the root

	// srcTree is the source's summary tree in summary mode (nil
	// otherwise); the raw window e.src stays maintained as ground
	// truth either way.
	srcTree *core.Tree

	// Durable mode only: the source's own window log, so a rebuilt
	// engine over the same DataDir resumes the arrival sequence the
	// replicas' logs are positioned in.
	srcLog       *durable.WindowLog
	srcLogDir    string
	srcRecovered durable.WindowRecovery

	staleness *metrics.Accumulator // staleness of degraded answers
	bounds    *metrics.Accumulator // reported bounds of degraded answers

	// ckEvery is the durable-mode checkpoint cadence in applied
	// arrivals; 0 when the engine is not durable.
	ckEvery uint64
	// logErr latches the first window-log I/O failure; Converged and
	// LogHealth surface it instead of silently dropping durability.
	logErr error

	// onCrash, when set, lets the wrapping protocol evict a crashed
	// node's protocol-level state.
	onCrash func(NodeID)
}

// NewEngine creates a replica engine over the network. It registers
// crash hooks on the network and a resync watchdog per client, so it
// must be the network's only user of OnCrash/OnRestart.
func NewEngine(net *Network, cfg EngineConfig) (*Engine, error) {
	if net == nil {
		return nil, fmt.Errorf("netsim: engine needs a network")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	srcWin, err := stream.NewWindow(cfg.WindowSize)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		net:       net,
		cfg:       cfg,
		src:       srcWin,
		reps:      make([]*clientReplica, net.top.Len()),
		staleness: &metrics.Accumulator{},
		bounds:    &metrics.Accumulator{},
	}
	if cfg.Summary != nil {
		e.srcTree = newSummaryTree(cfg)
	}
	root := net.top.Root()
	for _, id := range net.top.BFSOrder() {
		if id == root {
			continue
		}
		win, err := stream.NewWindow(cfg.WindowSize)
		if err != nil {
			return nil, err
		}
		r := &clientReplica{win: win, buf: make(map[uint64]float64), lastReq: math.Inf(-1)}
		if cfg.Summary != nil {
			r.tree = newSummaryTree(cfg)
		}
		client := id
		if cfg.DataDir != "" {
			r.logDir = filepath.Join(cfg.DataDir, fmt.Sprintf("node-%d", client))
			if err := openReplicaLog(r, cfg); err != nil {
				return nil, err
			}
		}
		r.upd, err = NewFlow(net, fmt.Sprintf("upd%d", client), root, client, cfg.Flow)
		if err != nil {
			return nil, err
		}
		r.upd.OnDeliver = func(_ uint64, payload any) { e.applyAtClient(client, payload) }
		r.req, err = NewFlow(net, fmt.Sprintf("req%d", client), client, root, cfg.Flow)
		if err != nil {
			return nil, err
		}
		r.req.OnDeliver = func(_ uint64, payload any) { e.serveResync(client, payload) }
		e.reps[id] = r
		if _, err := net.sim.Every(cfg.WatchdogPeriod, cfg.WatchdogPeriod, func() {
			e.watchdog(client)
		}); err != nil {
			return nil, err
		}
	}
	if cfg.DataDir != "" {
		e.ckEvery = uint64(cfg.Durable.CheckpointEvery)
		if e.ckEvery == 0 {
			// Window snapshots are tiny in the sim; checkpoint often so
			// restart replay stays short.
			e.ckEvery = 256
		}
		e.srcLogDir = filepath.Join(cfg.DataDir, fmt.Sprintf("node-%d", root))
		if err := e.openSourceLog(); err != nil {
			return nil, err
		}
	}
	net.OnCrash = e.handleCrash
	net.OnRestart = e.handleRestart
	return e, nil
}

// newSummaryTree builds a fresh summary-mode tree from the validated
// config.
func newSummaryTree(cfg EngineConfig) *core.Tree {
	tr, err := core.New(*cfg.Summary)
	if err != nil {
		panic(err) // unreachable: geometry validated in withDefaults
	}
	return tr
}

// openSourceLog opens (or re-opens after a root restart) the source's
// window log and restores the source window and arrival counter.
func (e *Engine) openSourceLog() error {
	log, rec, err := durable.OpenWindowLog(e.srcLogDir, e.cfg.WindowSize, e.cfg.Durable)
	if err != nil {
		return fmt.Errorf("netsim: source window log: %w", err)
	}
	win, err := stream.NewWindow(e.cfg.WindowSize)
	if err != nil {
		log.Close()
		return err
	}
	for _, v := range rec.Values { // oldest first
		win.Push(v)
	}
	e.srcLog, e.srcRecovered = log, rec
	e.src = win
	e.arr = rec.Arrival
	return nil
}

// openReplicaLog opens (or re-opens after a restart) a client's window
// log and installs the recovered window and arrival counter.
func openReplicaLog(r *clientReplica, cfg EngineConfig) error {
	log, rec, err := durable.OpenWindowLog(r.logDir, cfg.WindowSize, cfg.Durable)
	if err != nil {
		return fmt.Errorf("netsim: node window log: %w", err)
	}
	win, err := stream.NewWindow(cfg.WindowSize)
	if err != nil {
		log.Close()
		return err
	}
	for _, v := range rec.Values { // oldest first
		win.Push(v)
	}
	r.log, r.recovered = log, rec
	r.win = win
	r.arrival = rec.Arrival
	r.buf = make(map[uint64]float64)
	return nil
}

// Close flushes and closes the durable window logs (a no-op for a
// non-durable engine). The simulation must be drained first.
func (e *Engine) Close() error {
	var errs []error
	if e.srcLog != nil {
		if err := e.srcLog.Close(); err != nil {
			errs = append(errs, fmt.Errorf("netsim: source log: %w", err))
		}
		e.srcLog = nil
	}
	for id, r := range e.reps {
		if r == nil || r.log == nil {
			continue
		}
		if err := r.log.Close(); err != nil {
			errs = append(errs, fmt.Errorf("netsim: node %d log: %w", id, err))
		}
		r.log = nil
	}
	if e.logErr != nil {
		errs = append(errs, e.logErr)
	}
	return errors.Join(errs...)
}

// SetCrashHook installs the protocol-level eviction callback invoked when
// a node crashes (in addition to the engine's own replica reset).
func (e *Engine) SetCrashHook(fn func(NodeID)) { e.onCrash = fn }

// Network returns the underlying fault-injected network.
func (e *Engine) Network() *Network { return e.net }

// Arrivals returns the source arrival counter.
func (e *Engine) Arrivals() uint64 { return e.arr }

// SourceWindow returns the source's exact sliding window (the ground
// truth replicas converge to).
func (e *Engine) SourceWindow() *stream.Window { return e.src }

// StalenessStats returns accumulators over the staleness and reported
// bounds of degraded answers.
func (e *Engine) StalenessStats() (staleness, bounds *metrics.Accumulator) {
	return e.staleness, e.bounds
}

// OnData records a new source arrival and pushes it to every client over
// the reliable update flows.
func (e *Engine) OnData(v float64) {
	e.arr++
	e.src.Push(v)
	if e.srcTree != nil {
		e.srcTree.Update(v)
	}
	if e.srcLog != nil {
		if err := e.srcLog.Append(e.arr, v); err != nil {
			e.noteLogErr(err)
		} else if e.srcLog.SinceSnapshot() >= e.ckEvery {
			e.snapshotWindow(e.srcLog, e.src, e.arr)
		}
	}
	for _, id := range e.net.top.BFSOrder() {
		if r := e.reps[id]; r != nil {
			r.upd.Send(updMsg{Arrival: e.arr, Value: v})
		}
	}
}

// applyAtClient processes a frame delivered on a client's update flow.
func (e *Engine) applyAtClient(id NodeID, payload any) {
	r := e.reps[id]
	switch m := payload.(type) {
	case updMsg:
		if m.Arrival <= r.arrival {
			return // stale duplicate
		}
		if m.Arrival == r.arrival+1 {
			e.pushApplied(r, m.Arrival, m.Value)
			e.drainBuffer(r)
			return
		}
		r.buf[m.Arrival] = m.Value
		if len(r.buf) > e.cfg.ReorderLimit {
			e.requestResync(id)
		}
	case sumMsg:
		if r.tree == nil || m.Arrival <= r.arrival {
			return
		}
		s, err := core.DecodeSummary(m.Frame)
		var tr *core.Tree
		if err == nil {
			tr, err = core.FromSummary(s)
		}
		if err != nil {
			// Unreachable over the in-process flows (frames are never
			// corrupted in transit); dropping the repair leaves the
			// watchdog to request another.
			return
		}
		r.tree = tr
		r.arrival = m.Arrival
		for a := range r.buf {
			if a <= r.arrival {
				delete(r.buf, a)
			}
		}
		e.drainBuffer(r)
	case snapMsg:
		if r.tree != nil || m.Arrival <= r.arrival {
			return // summary mode repairs via sumMsg only
		}
		fresh, err := stream.NewWindow(e.cfg.WindowSize)
		if err != nil {
			panic(err) // unreachable: size validated at construction
		}
		for i := len(m.Values) - 1; i >= 0; i-- {
			fresh.Push(m.Values[i])
		}
		r.win = fresh
		r.arrival = m.Arrival
		for a := range r.buf {
			if a <= r.arrival {
				delete(r.buf, a)
			}
		}
		// The log must jump with the replica before the buffer drains:
		// a resync snapshot covers the gap the missed updates left.
		if r.log != nil {
			e.snapshotWindow(r.log, r.win, r.arrival)
		}
		e.drainBuffer(r)
	}
}

// pushApplied applies one in-order update to the replica window and,
// in durable mode, its log — checkpointing on the engine's cadence.
func (e *Engine) pushApplied(r *clientReplica, arrival uint64, v float64) {
	if r.tree != nil {
		r.tree.Update(v)
	} else {
		r.win.Push(v)
	}
	r.arrival = arrival
	if r.log == nil {
		return
	}
	if err := r.log.Append(arrival, v); err != nil {
		e.noteLogErr(err)
		return
	}
	if r.log.SinceSnapshot() >= e.ckEvery {
		e.snapshotWindow(r.log, r.win, r.arrival)
	}
}

// snapshotWindow checkpoints a window (converted to the oldest-first
// order snapshots use) at its applied arrival.
func (e *Engine) snapshotWindow(log *durable.WindowLog, win *stream.Window, arrival uint64) {
	vals := win.Values() // newest first
	oldest := make([]float64, len(vals))
	for i, v := range vals {
		oldest[len(vals)-1-i] = v
	}
	if err := log.Snapshot(arrival, oldest); err != nil {
		e.noteLogErr(err)
	}
}

// noteLogErr latches the first durability failure.
func (e *Engine) noteLogErr(err error) {
	if e.logErr == nil {
		e.logErr = err
	}
}

// drainBuffer applies consecutively buffered updates.
func (e *Engine) drainBuffer(r *clientReplica) {
	for {
		v, ok := r.buf[r.arrival+1]
		if !ok {
			return
		}
		delete(r.buf, r.arrival+1)
		e.pushApplied(r, r.arrival+1, v)
	}
}

// serveResync handles a client's snapshot request at the source.
func (e *Engine) serveResync(id NodeID, payload any) {
	if _, ok := payload.(reqMsg); !ok {
		return
	}
	if e.arr == 0 {
		return // nothing to snapshot yet
	}
	if e.srcTree != nil {
		e.net.counters.Add(CntResyncSum, 1)
		e.reps[id].upd.Send(sumMsg{Arrival: e.arr, Frame: e.srcTree.AppendSummary(nil)})
		return
	}
	e.net.counters.Add(CntResyncSnap, 1)
	e.reps[id].upd.Send(snapMsg{Arrival: e.arr, Values: e.src.Values()})
}

// requestResync issues a snapshot request, rate-limited to one per
// watchdog period.
func (e *Engine) requestResync(id NodeID) {
	r := e.reps[id]
	now := e.net.sim.Now()
	if r.reqEver && now-r.lastReq < e.cfg.WatchdogPeriod {
		return
	}
	r.lastReq = now
	r.reqEver = true
	e.net.counters.Add(CntResyncReq, 1)
	r.req.Send(reqMsg{Have: r.arrival})
}

// watchdog runs periodically at each client and requests a resync when
// the replica has fallen too far behind.
func (e *Engine) watchdog(id NodeID) {
	if e.net.Down(id) {
		return
	}
	if e.Staleness(id) > e.cfg.LagTolerance {
		e.requestResync(id)
	}
}

// handleCrash models volatile-state loss: the crashed node's replica is
// reset to empty, its window log (if any) is closed like the process
// died, and the wrapping protocol's eviction hook runs.
func (e *Engine) handleCrash(id NodeID) {
	if e.reps[id] == nil && e.srcLog != nil {
		// The root crashed: its process dies with the log closed; the
		// source state survives on disk and restart recovers it.
		if err := e.srcLog.Close(); err != nil {
			e.noteLogErr(err)
		}
		e.srcLog = nil
	}
	if r := e.reps[id]; r != nil {
		win, err := stream.NewWindow(e.cfg.WindowSize)
		if err != nil {
			panic(err) // unreachable
		}
		r.win = win
		if r.tree != nil {
			r.tree = newSummaryTree(e.cfg)
		}
		r.arrival = 0
		r.buf = make(map[uint64]float64)
		if r.log != nil {
			if err := r.log.Close(); err != nil {
				e.noteLogErr(err)
			}
			r.log = nil
		}
	}
	if e.onCrash != nil {
		e.onCrash(id)
	}
}

// handleRestart models the process coming back: a durable node re-opens
// its window log, recovers the persisted window and applied arrival
// counter, and resumes from there — the watchdog then resyncs only the
// arrivals missed while down, instead of the whole window from zero.
func (e *Engine) handleRestart(id NodeID) {
	r := e.reps[id]
	if r == nil {
		if e.srcLogDir != "" && e.srcLog == nil {
			if err := e.openSourceLog(); err != nil {
				e.noteLogErr(err)
			}
		}
		return
	}
	if r.logDir == "" {
		return
	}
	if err := openReplicaLog(r, e.cfg); err != nil {
		e.noteLogErr(err)
	}
}

// Recovered reports what the node's window log recovered at its most
// recent open (engine construction or the last restart). It is the
// zero value for the root, and for every node of a non-durable engine.
func (e *Engine) Recovered(id NodeID) durable.WindowRecovery {
	if !e.net.top.Valid(id) {
		return durable.WindowRecovery{}
	}
	if e.reps[id] == nil {
		return e.srcRecovered
	}
	return e.reps[id].recovered
}

// LogHealth returns the first durability failure the engine hit, if
// any. Converged also surfaces it.
func (e *Engine) LogHealth() error { return e.logErr }

// Staleness returns how many source arrivals the node's replica is
// missing; the root is always fresh.
func (e *Engine) Staleness(id NodeID) int {
	r := e.reps[id]
	if r == nil {
		return 0
	}
	return int(e.arr - r.arrival)
}

// Converged reports whether every live client replica has applied all
// source arrivals (the reconvergence invariant after a healed fault
// timeline).
func (e *Engine) Converged() error {
	if e.logErr != nil {
		return fmt.Errorf("netsim: durability failure: %w", e.logErr)
	}
	for _, id := range e.net.top.BFSOrder() {
		r := e.reps[id]
		if r == nil {
			continue
		}
		if e.net.Down(id) {
			return fmt.Errorf("netsim: node %d still down", id)
		}
		if r.arrival != e.arr {
			return fmt.Errorf("netsim: node %d at arrival %d, source at %d", id, r.arrival, e.arr)
		}
		if r.tree != nil {
			// Summary mode: the replica tree must match the source
			// tree bit for bit — the canonical encoding makes byte
			// equality exactly that claim.
			if !bytes.Equal(e.srcTree.AppendSummary(nil), r.tree.AppendSummary(nil)) {
				return fmt.Errorf("netsim: node %d summary tree diverges from the source", id)
			}
			continue
		}
		want := e.src.Values()
		got := r.win.Values()
		if len(want) != len(got) {
			return fmt.Errorf("netsim: node %d replica holds %d values, source %d", id, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				return fmt.Errorf("netsim: node %d replica diverges at age %d: %v != %v", id, i, got[i], want[i])
			}
		}
	}
	return nil
}

// Answer serves q from the node's replica with an explicit staleness
// bound: entries old enough to exist in the replica are read exactly
// (shifted by the staleness), unknown entries contribute the midpoint of
// the declared value range and widen the bound. At the root it answers
// exactly from the source window.
func (e *Engine) Answer(at NodeID, q query.Query) (Answer, error) {
	if !e.net.top.Valid(at) {
		return Answer{}, fmt.Errorf("netsim: invalid node %d", at)
	}
	if err := q.Validate(); err != nil {
		return Answer{}, err
	}
	for _, g := range q.Ages {
		if g >= e.cfg.WindowSize {
			return Answer{}, fmt.Errorf("netsim: age %d outside window [0,%d)", g, e.cfg.WindowSize)
		}
	}
	if e.reps[at] == nil {
		if e.srcTree != nil {
			// Summary mode: the root answers from its own tree — the
			// state being replicated — with cold (uncovered) entries
			// bounded like unknown ones.
			val, bound := e.evalDegraded(q, 0, e.srcTree.PointQuery)
			return Answer{Value: val, Bound: bound}, nil
		}
		v, err := query.Exact(e.src, q)
		if err != nil {
			return Answer{}, err
		}
		return Answer{Value: v}, nil
	}
	r := e.reps[at]
	s := e.Staleness(at)
	at_ := r.win.At
	if r.tree != nil {
		at_ = r.tree.PointQuery
	}
	val, bound := e.evalDegraded(q, s, at_)
	e.net.counters.Add(CntStaleQ, 1)
	e.staleness.Add(float64(s))
	e.bounds.Add(bound)
	return Answer{Value: val, Staleness: s, Bound: bound, Degraded: true}, nil
}

// evalDegraded evaluates q against a replica reader shifted by
// staleness s: readable entries contribute their replica value,
// everything else — entries newer than the last sync, outside the
// replica, or not covered by a still-warming tree — contributes the
// midpoint of the declared range and widens the bound by |w|·(hi−lo)/2.
func (e *Engine) evalDegraded(q query.Query, s int, read func(int) (float64, error)) (val, bound float64) {
	mid := (e.cfg.ValueLo + e.cfg.ValueHi) / 2
	half := (e.cfg.ValueHi - e.cfg.ValueLo) / 2
	for i, g := range q.Ages {
		w := q.Weights[i]
		if g >= s {
			if rv, err := read(g - s); err == nil {
				val += w * rv
				continue
			}
		}
		val += w * mid
		bound += math.Abs(w) * half
	}
	return val, bound
}

// NoteFresh records an in-sync query in the engine counters (called by
// the protocol wrappers when they delegate to the wrapped protocol).
func (e *Engine) NoteFresh() {
	e.net.counters.Add(CntFreshQ, 1)
}
