package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"github.com/streamsum/swat/internal/metrics"
	"github.com/streamsum/swat/internal/sim"
)

// This file adds a fault-injected message fabric on top of the perfect
// Topology substrate: per-link drop probability, latency distributions
// (base + uniform jitter, which induces reordering), explicit reorder
// spikes, node crash/restart, and network partitions — all driven by a
// single seeded RNG so every run replays identically from its seed.
// Protocols that want delivery guarantees layer the Flow (reliable.go)
// and Engine (replica.go) machinery over Network.

// LinkFaults configures the behavior of one directed link (or, as the
// network default, of every link without an override). The zero value is
// a perfect link: no loss, no delay.
type LinkFaults struct {
	// DropProb is the probability that a message traversing this link is
	// lost, drawn independently per traversal.
	DropProb float64
	// LatencyBase is the fixed per-hop delay in simulated time units.
	LatencyBase float64
	// LatencyJitter adds a uniform extra delay in [0, LatencyJitter).
	// Jitter lets later messages overtake earlier ones, producing
	// reordering.
	LatencyJitter float64
	// ReorderProb is the probability of an additional ReorderExtra delay
	// spike, forcing reordering even when jitter alone is small.
	ReorderProb float64
	// ReorderExtra is the delay added by a reorder spike.
	ReorderExtra float64
	// Cut severs the link entirely (a network partition): every message
	// traversing it is lost until the link heals.
	Cut bool
}

// validate rejects configurations that would make runs nonsensical.
func (lf LinkFaults) validate() error {
	if lf.DropProb < 0 || lf.DropProb > 1 || math.IsNaN(lf.DropProb) {
		return fmt.Errorf("netsim: drop probability %v outside [0,1]", lf.DropProb)
	}
	if lf.ReorderProb < 0 || lf.ReorderProb > 1 || math.IsNaN(lf.ReorderProb) {
		return fmt.Errorf("netsim: reorder probability %v outside [0,1]", lf.ReorderProb)
	}
	for _, v := range []float64{lf.LatencyBase, lf.LatencyJitter, lf.ReorderExtra} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("netsim: invalid latency parameter %v", v)
		}
	}
	return nil
}

// linkKey identifies a directed link.
type linkKey struct {
	from, to NodeID
}

// Message is one frame in flight on the fault-injected network.
type Message struct {
	From, To NodeID
	// Kind routes the frame to a per-node, per-kind handler; by
	// convention reliable flows use "data/<flow>" and "ack/<flow>".
	Kind string
	// Seq is the sender-assigned sequence number (transport-level).
	Seq uint64
	// Payload carries the protocol content.
	Payload any
}

// LogEntry is one record of the network's deterministic message log.
type LogEntry struct {
	T      float64
	From   NodeID
	To     NodeID
	Kind   string
	Seq    uint64
	Event  string // "send", "drop", "cut", "srcdown", "deliver", "lost"
	Detail string // e.g. the edge a drop happened on, or the latency
}

// Counter names recorded by Network in its metrics.Counters set.
const (
	CntSent      = "net_sent"      // messages handed to Send
	CntDelivered = "net_delivered" // messages that reached a live receiver
	CntDropped   = "net_dropped"   // lost to random per-link drops
	CntCut       = "net_cut"       // lost to a severed (partitioned) link
	CntLostDown  = "net_lost_down" // lost because an endpoint was crashed
)

// Network is an event-driven, fault-injected message fabric over a tree
// topology, clocked by a discrete-event simulator. Messages travel the
// tree path between endpoints; each hop independently applies the link's
// drop probability and contributes latency. All randomness comes from one
// seeded RNG, so a run is a pure function of (seed, configuration,
// schedule) and the message log replays byte-identically.
type Network struct {
	sim       *sim.Simulator
	top       *Topology
	rng       *rand.Rand
	base      LinkFaults
	overrides map[linkKey]LinkFaults
	down      []bool
	subs      []map[string]func(Message)
	counters  *metrics.Counters
	pending   int // scheduled deliveries not yet executed

	logOn bool
	log   []LogEntry

	// OnCrash and OnRestart, when set, observe node state transitions
	// (the replica engine uses them to model volatile-state loss).
	OnCrash   func(NodeID)
	OnRestart func(NodeID)
}

// NewNetwork creates a fault-injected network over top, clocked by s,
// with the given default link behavior and RNG seed. Logging is enabled;
// long-running experiments can disable it with SetLogging(false).
func NewNetwork(s *sim.Simulator, top *Topology, base LinkFaults, seed int64) (*Network, error) {
	if s == nil || top == nil || top.Len() < 1 {
		return nil, fmt.Errorf("netsim: network needs a simulator and a non-empty topology")
	}
	if err := base.validate(); err != nil {
		return nil, err
	}
	n := &Network{
		sim:       s,
		top:       top,
		rng:       rand.New(rand.NewSource(seed)),
		base:      base,
		overrides: make(map[linkKey]LinkFaults),
		down:      make([]bool, top.Len()),
		subs:      make([]map[string]func(Message), top.Len()),
		counters:  metrics.NewCounters(),
		logOn:     true,
	}
	for i := range n.subs {
		n.subs[i] = make(map[string]func(Message))
	}
	return n, nil
}

// Sim returns the simulator clocking this network.
func (n *Network) Sim() *sim.Simulator { return n.sim }

// Topology returns the underlying topology.
func (n *Network) Topology() *Topology { return n.top }

// Counters returns the network's event counters.
func (n *Network) Counters() *metrics.Counters { return n.counters }

// Pending returns the number of in-flight (scheduled, undelivered)
// messages.
func (n *Network) Pending() int { return n.pending }

// SetLogging toggles the message log.
func (n *Network) SetLogging(on bool) { n.logOn = on }

// Log returns the message log recorded so far.
func (n *Network) Log() []LogEntry {
	return append([]LogEntry(nil), n.log...)
}

// FormatLog renders the message log in a canonical text form; two runs
// with the same seed, configuration, and schedule produce byte-identical
// output.
func (n *Network) FormatLog() string {
	var b strings.Builder
	for _, e := range n.log {
		fmt.Fprintf(&b, "t=%.9g %d->%d %s seq=%d %s", e.T, e.From, e.To, e.Kind, e.Seq, e.Event)
		if e.Detail != "" {
			fmt.Fprintf(&b, " %s", e.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (n *Network) record(e LogEntry) {
	if n.logOn {
		n.log = append(n.log, e)
	}
}

// SetBaseFaults replaces the default link behavior (per-link overrides
// and cuts are preserved).
func (n *Network) SetBaseFaults(lf LinkFaults) error {
	if err := lf.validate(); err != nil {
		return err
	}
	n.base = lf
	return nil
}

// SetDropProb sets the default per-link drop probability, keeping the
// other default parameters.
func (n *Network) SetDropProb(p float64) error {
	lf := n.base
	lf.DropProb = p
	return n.SetBaseFaults(lf)
}

// SetLinkFaults overrides the behavior of the directed link from→to.
// Both nodes must be adjacent in the topology.
func (n *Network) SetLinkFaults(from, to NodeID, lf LinkFaults) error {
	if !n.top.Adjacent(from, to) {
		return fmt.Errorf("netsim: %d and %d are not adjacent", from, to)
	}
	if err := lf.validate(); err != nil {
		return err
	}
	n.overrides[linkKey{from, to}] = lf
	return nil
}

// linkFaults resolves the effective behavior of one directed link.
func (n *Network) linkFaults(from, to NodeID) LinkFaults {
	if lf, ok := n.overrides[linkKey{from, to}]; ok {
		return lf
	}
	return n.base
}

// Cut severs the (bidirectional) link between adjacent nodes a and b — a
// network partition along that edge.
func (n *Network) Cut(a, b NodeID) error {
	if !n.top.Adjacent(a, b) {
		return fmt.Errorf("netsim: %d and %d are not adjacent", a, b)
	}
	for _, k := range []linkKey{{a, b}, {b, a}} {
		lf := n.linkFaults(k.from, k.to)
		lf.Cut = true
		n.overrides[k] = lf
	}
	return nil
}

// HealLink restores a previously cut link.
func (n *Network) HealLink(a, b NodeID) error {
	if !n.top.Adjacent(a, b) {
		return fmt.Errorf("netsim: %d and %d are not adjacent", a, b)
	}
	for _, k := range []linkKey{{a, b}, {b, a}} {
		lf := n.linkFaults(k.from, k.to)
		lf.Cut = false
		n.overrides[k] = lf
	}
	return nil
}

// Crash marks a node as down: it neither sends nor receives, and frames
// in flight toward it are lost on arrival. Crashing an already-down node
// is a no-op.
func (n *Network) Crash(id NodeID) error {
	if !n.top.Valid(id) {
		return fmt.Errorf("netsim: invalid node %d", id)
	}
	if n.down[id] {
		return nil
	}
	n.down[id] = true
	if n.OnCrash != nil {
		n.OnCrash(id)
	}
	return nil
}

// Restart brings a crashed node back up. Restarting a live node is a
// no-op.
func (n *Network) Restart(id NodeID) error {
	if !n.top.Valid(id) {
		return fmt.Errorf("netsim: invalid node %d", id)
	}
	if !n.down[id] {
		return nil
	}
	n.down[id] = false
	if n.OnRestart != nil {
		n.OnRestart(id)
	}
	return nil
}

// Down reports whether a node is currently crashed.
func (n *Network) Down(id NodeID) bool {
	return n.top.Valid(id) && n.down[id]
}

// HealAll clears every partition, restarts every crashed node, and zeroes
// the default and per-link drop probabilities (latency settings are
// kept) — the "network heals" step of a fault scenario.
func (n *Network) HealAll() {
	n.base.DropProb = 0
	for k, lf := range n.overrides {
		lf.Cut = false
		lf.DropProb = 0
		n.overrides[k] = lf
	}
	for id := range n.down {
		if n.down[id] {
			// Valid node IDs never error here.
			if err := n.Restart(NodeID(id)); err != nil {
				panic(err)
			}
		}
	}
}

// Subscribe registers the handler for frames of the given kind arriving
// at the node, replacing any previous handler for that kind.
func (n *Network) Subscribe(at NodeID, kind string, h func(Message)) error {
	if !n.top.Valid(at) {
		return fmt.Errorf("netsim: invalid node %d", at)
	}
	n.subs[at][kind] = h
	return nil
}

// pathEdges returns the directed edges of the tree path from a to b, in
// traversal order.
func (n *Network) pathEdges(a, b NodeID) [][2]NodeID {
	da, db := n.top.Depth(a), n.top.Depth(b)
	var up, downR [][2]NodeID
	for da > db {
		p := n.top.Parent(a)
		up = append(up, [2]NodeID{a, p})
		a, da = p, da-1
	}
	for db > da {
		p := n.top.Parent(b)
		downR = append(downR, [2]NodeID{p, b})
		b, db = p, db-1
	}
	for a != b {
		pa, pb := n.top.Parent(a), n.top.Parent(b)
		up = append(up, [2]NodeID{a, pa})
		downR = append(downR, [2]NodeID{pb, b})
		a, b = pa, pb
	}
	for i := len(downR) - 1; i >= 0; i-- {
		up = append(up, downR[i])
	}
	return up
}

// Send routes one frame from→to along the tree path. Fault evaluation is
// immediate and deterministic: each hop applies the link's cut state and
// drop probability in path order and accumulates latency; surviving
// frames are scheduled for delivery after the total latency. The outcome
// is recorded in the message log either way. Send never blocks and never
// fails the caller: loss is an accounting event, not an error.
func (n *Network) Send(from, to NodeID, kind string, seq uint64, payload any) {
	if !n.top.Valid(from) || !n.top.Valid(to) || from == to {
		panic(fmt.Sprintf("netsim: send %d->%d invalid", from, to))
	}
	now := n.sim.Now()
	n.counters.Add(CntSent, 1)
	if n.down[from] {
		n.counters.Add(CntLostDown, 1)
		n.record(LogEntry{T: now, From: from, To: to, Kind: kind, Seq: seq, Event: "srcdown"})
		return
	}
	var latency float64
	for _, edge := range n.pathEdges(from, to) {
		lf := n.linkFaults(edge[0], edge[1])
		if lf.Cut {
			n.counters.Add(CntCut, 1)
			n.record(LogEntry{
				T: now, From: from, To: to, Kind: kind, Seq: seq,
				Event: "cut", Detail: fmt.Sprintf("edge=%d-%d", edge[0], edge[1]),
			})
			return
		}
		if lf.DropProb > 0 && n.rng.Float64() < lf.DropProb {
			n.counters.Add(CntDropped, 1)
			n.record(LogEntry{
				T: now, From: from, To: to, Kind: kind, Seq: seq,
				Event: "drop", Detail: fmt.Sprintf("edge=%d-%d", edge[0], edge[1]),
			})
			return
		}
		latency += lf.LatencyBase
		if lf.LatencyJitter > 0 {
			latency += n.rng.Float64() * lf.LatencyJitter
		}
		if lf.ReorderProb > 0 && n.rng.Float64() < lf.ReorderProb {
			latency += lf.ReorderExtra
		}
	}
	n.record(LogEntry{
		T: now, From: from, To: to, Kind: kind, Seq: seq,
		Event: "send", Detail: fmt.Sprintf("lat=%.9g", latency),
	})
	msg := Message{From: from, To: to, Kind: kind, Seq: seq, Payload: payload}
	n.pending++
	n.sim.After(latency, func() {
		n.pending--
		at := n.sim.Now()
		if n.down[to] {
			n.counters.Add(CntLostDown, 1)
			n.record(LogEntry{T: at, From: from, To: to, Kind: kind, Seq: seq, Event: "lost"})
			return
		}
		n.counters.Add(CntDelivered, 1)
		n.record(LogEntry{T: at, From: from, To: to, Kind: kind, Seq: seq, Event: "deliver"})
		if h := n.subs[to][kind]; h != nil {
			h(msg)
		}
	})
}

// AccountingError checks the network's conservation invariant: every sent
// message is delivered, dropped, cut, lost to a down endpoint, or still
// in flight. It returns a descriptive error when the books don't balance.
func (n *Network) AccountingError() error {
	c := n.counters
	sent := c.Get(CntSent)
	accounted := c.Get(CntDelivered) + c.Get(CntDropped) + c.Get(CntCut) +
		c.Get(CntLostDown) + uint64(n.pending)
	if sent != accounted {
		return fmt.Errorf("netsim: accounting imbalance: sent=%d but delivered+dropped+cut+lost+inflight=%d (%s, inflight=%d)",
			sent, accounted, c, n.pending)
	}
	return nil
}
