package netsim

import (
	"strings"
	"testing"

	"github.com/streamsum/swat/internal/core"
	"github.com/streamsum/swat/internal/query"
)

// summaryCfg is an engine config in summary-shipping mode with a
// lossless tree geometry for the given window: with Coefficients == n
// every node keeps its full coefficient set, so tree point queries over
// covered ages reproduce the raw window exactly and the only error
// sources left are staleness and cold (not-yet-covered) entries.
func summaryCfg(n int) EngineConfig {
	return EngineConfig{
		WindowSize: n,
		ValueLo:    0,
		ValueHi:    100,
		Summary:    &core.Options{Coefficients: n},
	}
}

// TestSummaryEngineReplicatesAndConverges runs the lossy-link
// convergence scenario in summary mode: after the network heals, every
// replica tree must match the source tree bit for bit (Converged
// compares canonical encodings).
func TestSummaryEngineReplicatesAndConverges(t *testing.T) {
	s, n := testNet(t, LinkFaults{DropProb: 0.3, LatencyBase: 0.05, LatencyJitter: 0.1}, 11)
	e, err := NewEngine(n, summaryCfg(4))
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	for i := 0; i < 40; i++ {
		v := float64(i % 100)
		s.After(0, func() { e.OnData(v) })
		s.RunUntil(float64(i + 1))
	}
	n.HealAll()
	s.RunUntil(s.Now() + 100)
	if err := e.Converged(); err != nil {
		t.Fatalf("replicas did not converge: %v", err)
	}
	if err := n.AccountingError(); err != nil {
		t.Error(err)
	}
	// The lossless geometry makes the root's tree-served answer agree
	// with the exact window answer.
	q, err := query.New(query.Exponential, 0, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Answer(0, q)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := query.Exact(e.SourceWindow(), q)
	if err != nil {
		t.Fatal(err)
	}
	if d := ans.Value - exact; d > 1e-9 || d < -1e-9 {
		t.Errorf("root summary answer %v, exact %v", ans.Value, exact)
	}
	if ans.Bound != 0 || ans.Degraded {
		t.Errorf("warm root answer reported degraded: %+v", ans)
	}
}

// TestSummaryEngineCrashRepairShipsSummary pins the repair fast path: a
// crashed replica loses its tree, and the watchdog-triggered resync
// ships the source's encoded summary — never a raw window snapshot —
// after which the replica is bit-identical to the source again, and
// stays so under further identical updates.
func TestSummaryEngineCrashRepairShipsSummary(t *testing.T) {
	s, n := testNet(t, LinkFaults{LatencyBase: 0.01}, 11)
	cfg := summaryCfg(4)
	cfg.WatchdogPeriod = 2
	e, err := NewEngine(n, cfg)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	feed := func(v float64) {
		s.After(0, func() { e.OnData(v) })
		s.RunUntil(s.Now() + 1)
	}
	for i := 0; i < 6; i++ {
		feed(float64(10 * i))
	}
	if err := n.Crash(2); err != nil {
		t.Fatal(err)
	}
	if e.Staleness(2) != 6 {
		t.Errorf("crashed node staleness = %d, want 6 (volatile tree lost)", e.Staleness(2))
	}
	if err := n.Restart(2); err != nil {
		t.Fatal(err)
	}
	// The watchdog notices the lag and pulls a summary frame.
	s.RunUntil(s.Now() + 20)
	// Updates after the repair must keep the rebuilt tree in lockstep:
	// canonical encoding means FromSummary(Export(src)) evolves
	// bit-identically to src under the same arrivals.
	for i := 0; i < 10; i++ {
		feed(float64(7 * i))
	}
	s.RunUntil(s.Now() + 20)
	if err := e.Converged(); err != nil {
		t.Fatalf("post-restart summary repair failed: %v", err)
	}
	if got := n.Counters().Get(CntResyncSum); got == 0 {
		t.Errorf("no summary frames served: %s", n.Counters())
	}
	if got := n.Counters().Get(CntResyncSnap); got != 0 {
		t.Errorf("summary mode served %d raw window snapshots", got)
	}
}

// TestSummaryEngineStalenessBound mirrors the window-mode staleness
// test: a partitioned replica answers from its (shifted) tree, with the
// bound covering exactly the entries that arrived after its last sync.
func TestSummaryEngineStalenessBound(t *testing.T) {
	s, n := testNet(t, LinkFaults{LatencyBase: 0.01}, 11)
	cfg := summaryCfg(4)
	cfg.ValueLo, cfg.ValueHi = -10, 10
	e, err := NewEngine(n, cfg)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	q, err := query.New(query.Exponential, 0, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Before any arrival the root's tree covers nothing: every entry
	// falls back to the range midpoint and the bound is the full
	// half-range mass Σ|w|·(hi−lo)/2 = 1.875·10.
	cold, err := e.Answer(0, q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Bound != 18.75 {
		t.Errorf("cold root bound = %v, want 18.75", cold.Bound)
	}
	feed := func(v float64) {
		s.After(0, func() { e.OnData(v) })
		s.RunUntil(s.Now() + 1)
	}
	for i := 0; i < 8; i++ {
		feed(float64(i%21) - 10)
	}
	if err := n.Cut(1, 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		feed(float64((8+i)%21) - 10)
	}
	if st := e.Staleness(3); st != 2 {
		t.Fatalf("staleness = %d, want 2", st)
	}
	ans, err := e.Answer(3, q)
	if err != nil {
		t.Fatalf("answer: %v", err)
	}
	if !ans.Degraded || ans.Staleness != 2 {
		t.Errorf("answer not flagged degraded/stale: %+v", ans)
	}
	exact, err := query.Exact(e.SourceWindow(), q)
	if err != nil {
		t.Fatal(err)
	}
	if diff := ans.Value - exact; diff > ans.Bound+1e-9 || diff < -ans.Bound-1e-9 {
		t.Errorf("|%v - %v| = %v exceeds reported bound %v", ans.Value, exact, diff, ans.Bound)
	}
	// Ages >= staleness are served from the shifted replica tree
	// (exactly, thanks to the lossless geometry), so the bound covers
	// only the two newest entries: (1 + 1/2)·(hi−lo)/2 = 15.
	if ans.Bound != 15 {
		t.Errorf("bound = %v, want 15", ans.Bound)
	}
	// The warm root stays exact.
	rootAns, err := e.Answer(0, q)
	if err != nil {
		t.Fatal(err)
	}
	if d := rootAns.Value - exact; d > 1e-9 || d < -1e-9 {
		t.Errorf("root answer %v, want exact %v", rootAns.Value, exact)
	}
	if rootAns.Bound != 0 || rootAns.Degraded {
		t.Errorf("warm root answer degraded: %+v", rootAns)
	}
}

// TestSummaryEngineConfigValidation pins the summary-mode config
// errors: DataDir is incompatible (window logs replay raw values, not
// tree state) and the summary geometry must share the engine's window.
func TestSummaryEngineConfigValidation(t *testing.T) {
	_, n := testNet(t, LinkFaults{}, 11)
	cfg := summaryCfg(4)
	cfg.DataDir = t.TempDir()
	if _, err := NewEngine(n, cfg); err == nil || !strings.Contains(err.Error(), "incompatible") {
		t.Fatalf("DataDir + Summary accepted: %v", err)
	}
	cfg = summaryCfg(4)
	cfg.Summary.WindowSize = 8
	if _, err := NewEngine(n, cfg); err == nil || !strings.Contains(err.Error(), "window size") {
		t.Fatalf("mismatched summary window accepted: %v", err)
	}
	cfg = summaryCfg(4)
	cfg.Summary.Coefficients = -1
	if _, err := NewEngine(n, cfg); err == nil {
		t.Fatal("invalid summary geometry accepted")
	}
}
