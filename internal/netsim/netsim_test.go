package netsim

import (
	"testing"
	"testing/quick"
)

func TestNewTopology(t *testing.T) {
	top := NewTopology()
	if top.Len() != 1 || top.Root() != 0 {
		t.Fatal("fresh topology wrong")
	}
	if top.Parent(0) != NoNode {
		t.Error("root parent should be NoNode")
	}
	if !top.IsLeaf(0) {
		t.Error("lone root should be a leaf")
	}
	if top.Valid(1) || top.Valid(-1) {
		t.Error("Valid accepted unknown node")
	}
}

func TestAddChild(t *testing.T) {
	top := NewTopology()
	c1, err := top.AddChild(0)
	if err != nil || c1 != 1 {
		t.Fatalf("AddChild = %d, %v", c1, err)
	}
	c2, _ := top.AddChild(0)
	g, _ := top.AddChild(c1)
	if top.Parent(g) != c1 || top.Parent(c1) != 0 {
		t.Error("parents wrong")
	}
	kids := top.Children(0)
	if len(kids) != 2 || kids[0] != c1 || kids[1] != c2 {
		t.Errorf("Children(0) = %v", kids)
	}
	if top.IsLeaf(c1) || !top.IsLeaf(g) {
		t.Error("leaf detection wrong")
	}
	if _, err := top.AddChild(99); err == nil {
		t.Error("accepted invalid parent")
	}
	// Children must return a copy.
	kids[0] = 42
	if top.Children(0)[0] == 42 {
		t.Error("Children exposes internal slice")
	}
}

func TestDepthAndHops(t *testing.T) {
	top, err := CompleteBinaryTree(7)
	if err != nil {
		t.Fatal(err)
	}
	if top.Depth(0) != 0 || top.Depth(1) != 1 || top.Depth(3) != 2 || top.Depth(6) != 2 {
		t.Error("depths wrong")
	}
	cases := []struct {
		a, b NodeID
		want int
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 2}, {3, 4, 2}, {3, 6, 4}, {1, 2, 2},
	}
	for _, c := range cases {
		got, err := top.Hops(c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("Hops(%d,%d) = %d (%v), want %d", c.a, c.b, got, err, c.want)
		}
	}
	if _, err := top.Hops(0, 99); err == nil {
		t.Error("Hops accepted invalid node")
	}
}

func TestAdjacent(t *testing.T) {
	top, _ := CompleteBinaryTree(7)
	if !top.Adjacent(0, 1) || !top.Adjacent(1, 0) || !top.Adjacent(1, 3) {
		t.Error("adjacency missing")
	}
	if top.Adjacent(1, 2) || top.Adjacent(3, 4) || top.Adjacent(0, 99) {
		t.Error("false adjacency")
	}
}

func TestBFSOrder(t *testing.T) {
	top, _ := CompleteBinaryTree(7)
	order := top.BFSOrder()
	if len(order) != 7 {
		t.Fatalf("BFS length %d", len(order))
	}
	for i, id := range order {
		if NodeID(i) != id {
			t.Fatalf("BFS order = %v, want identity for complete binary tree", order)
		}
	}
}

func TestCompleteBinaryTreeValidation(t *testing.T) {
	if _, err := CompleteBinaryTree(0); err == nil {
		t.Error("accepted 0 nodes")
	}
	top, err := CompleteBinaryTree(1)
	if err != nil || top.Len() != 1 {
		t.Error("single-node tree failed")
	}
}

func TestChain(t *testing.T) {
	top, err := Chain(4)
	if err != nil {
		t.Fatal(err)
	}
	if top.Len() != 4 {
		t.Fatalf("Len = %d", top.Len())
	}
	for i := 1; i < 4; i++ {
		if top.Parent(NodeID(i)) != NodeID(i-1) {
			t.Fatalf("chain parent of %d = %d", i, top.Parent(NodeID(i)))
		}
	}
	h, _ := top.Hops(0, 3)
	if h != 3 {
		t.Errorf("Hops(0,3) = %d, want 3", h)
	}
	if _, err := Chain(0); err == nil {
		t.Error("accepted 0 nodes")
	}
}

// Property: hops is a metric on the tree — symmetric, zero iff equal,
// and consistent with depth along root paths.
func TestQuickHopsMetric(t *testing.T) {
	top, _ := CompleteBinaryTree(31)
	f := func(ai, bi uint8) bool {
		a := NodeID(int(ai) % 31)
		b := NodeID(int(bi) % 31)
		ab, err1 := top.Hops(a, b)
		ba, err2 := top.Hops(b, a)
		if err1 != nil || err2 != nil || ab != ba {
			return false
		}
		if (ab == 0) != (a == b) {
			return false
		}
		root, err := top.Hops(0, a)
		return err == nil && root == top.Depth(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	if c.Total() != 0 {
		t.Error("fresh counter nonzero")
	}
	c.Count("query", 1)
	c.Count("query", 2)
	c.Count("update", 1)
	c.Count("noop", 0)  // ignored
	c.Count("noop", -1) // ignored
	if c.Total() != 4 {
		t.Errorf("Total = %d, want 4", c.Total())
	}
	if c.Kind("query") != 3 || c.Kind("update") != 1 || c.Kind("noop") != 0 {
		t.Error("per-kind counts wrong")
	}
	kinds := c.Kinds()
	if len(kinds) != 2 || kinds[0] != "query" || kinds[1] != "update" {
		t.Errorf("Kinds = %v", kinds)
	}
	c.Reset()
	if c.Total() != 0 || c.Kind("query") != 0 {
		t.Error("Reset incomplete")
	}
}

func TestRandomTree(t *testing.T) {
	if _, err := RandomTree(1, 0); err == nil {
		t.Error("accepted 0 nodes")
	}
	top, err := RandomTree(7, 50)
	if err != nil {
		t.Fatal(err)
	}
	if top.Len() != 50 {
		t.Fatalf("Len = %d", top.Len())
	}
	// Every node except the root has a valid parent with a smaller ID.
	for i := 1; i < 50; i++ {
		p := top.Parent(NodeID(i))
		if p == NoNode || p >= NodeID(i) {
			t.Fatalf("node %d has parent %d", i, p)
		}
	}
	// BFS visits every node exactly once.
	seen := map[NodeID]bool{}
	for _, id := range top.BFSOrder() {
		if seen[id] {
			t.Fatalf("BFS visited %d twice", id)
		}
		seen[id] = true
	}
	if len(seen) != 50 {
		t.Fatalf("BFS visited %d nodes", len(seen))
	}
	// Determinism.
	top2, _ := RandomTree(7, 50)
	for i := 0; i < 50; i++ {
		if top.Parent(NodeID(i)) != top2.Parent(NodeID(i)) {
			t.Fatal("same-seed RandomTree diverged")
		}
	}
}
