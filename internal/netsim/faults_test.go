package netsim

import (
	"strings"
	"testing"

	"github.com/streamsum/swat/internal/query"
	"github.com/streamsum/swat/internal/sim"
)

// testNet builds a network over a 7-node complete binary tree.
func testNet(t *testing.T, base LinkFaults, seed int64) (*sim.Simulator, *Network) {
	t.Helper()
	s := sim.New()
	top, err := CompleteBinaryTree(7)
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	n, err := NewNetwork(s, top, base, seed)
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	return s, n
}

func TestLinkFaultsValidation(t *testing.T) {
	s := sim.New()
	top, _ := CompleteBinaryTree(3)
	bad := []LinkFaults{
		{DropProb: -0.1},
		{DropProb: 1.5},
		{ReorderProb: 2},
		{LatencyBase: -1},
		{LatencyJitter: -0.5},
	}
	for _, lf := range bad {
		if _, err := NewNetwork(s, top, lf, 1); err == nil {
			t.Errorf("NewNetwork accepted invalid faults %+v", lf)
		}
	}
	if _, err := NewNetwork(nil, top, LinkFaults{}, 1); err == nil {
		t.Error("NewNetwork accepted nil simulator")
	}
}

func TestPerfectDelivery(t *testing.T) {
	s, n := testNet(t, LinkFaults{LatencyBase: 0.25}, 1)
	var got []Message
	if err := n.Subscribe(5, "x", func(m Message) { got = append(got, m) }); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	n.Send(0, 5, "x", 7, "payload")
	s.Run()
	if len(got) != 1 || got[0].Seq != 7 || got[0].Payload != "payload" {
		t.Fatalf("delivery: got %+v", got)
	}
	// Node 5's path from the root is 0->2->5: two hops of 0.25 latency.
	if s.Now() != 0.5 {
		t.Errorf("delivery time = %v, want 0.5 (2 hops x 0.25)", s.Now())
	}
	if err := n.AccountingError(); err != nil {
		t.Error(err)
	}
	if c := n.Counters(); c.Get(CntDelivered) != 1 || c.Get(CntSent) != 1 {
		t.Errorf("counters: %s", c)
	}
}

func TestDropAllLosesEverything(t *testing.T) {
	s, n := testNet(t, LinkFaults{DropProb: 1}, 1)
	delivered := 0
	n.Subscribe(1, "x", func(Message) { delivered++ })
	for i := 0; i < 20; i++ {
		n.Send(0, 1, "x", uint64(i), nil)
	}
	s.Run()
	if delivered != 0 {
		t.Fatalf("delivered %d messages over a drop-all link", delivered)
	}
	if c := n.Counters(); c.Get(CntDropped) != 20 {
		t.Errorf("dropped = %d, want 20 (%s)", c.Get(CntDropped), c)
	}
	if err := n.AccountingError(); err != nil {
		t.Error(err)
	}
}

func TestCutAndHealLink(t *testing.T) {
	s, n := testNet(t, LinkFaults{}, 1)
	delivered := 0
	n.Subscribe(3, "x", func(Message) { delivered++ })
	if err := n.Cut(1, 3); err != nil {
		t.Fatalf("cut: %v", err)
	}
	if err := n.Cut(0, 5); err == nil {
		t.Error("Cut accepted non-adjacent nodes")
	}
	n.Send(0, 3, "x", 1, nil) // path 0->1->3 crosses the cut edge
	s.Run()
	if delivered != 0 {
		t.Fatal("message crossed a cut link")
	}
	if c := n.Counters(); c.Get(CntCut) != 1 {
		t.Errorf("cut count = %d, want 1", c.Get(CntCut))
	}
	if err := n.HealLink(1, 3); err != nil {
		t.Fatalf("heal: %v", err)
	}
	n.Send(0, 3, "x", 2, nil)
	s.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d after heal, want 1", delivered)
	}
	if err := n.AccountingError(); err != nil {
		t.Error(err)
	}
}

func TestCrashAndRestart(t *testing.T) {
	s, n := testNet(t, LinkFaults{LatencyBase: 1}, 1)
	var crashes, restarts []NodeID
	n.OnCrash = func(id NodeID) { crashes = append(crashes, id) }
	n.OnRestart = func(id NodeID) { restarts = append(restarts, id) }
	delivered := 0
	n.Subscribe(2, "x", func(Message) { delivered++ })

	// A frame already in flight toward a node that crashes before it
	// arrives is lost on arrival.
	n.Send(0, 2, "x", 1, nil)
	if err := n.Crash(2); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if err := n.Crash(2); err != nil {
		t.Fatalf("idempotent crash: %v", err)
	}
	s.Run()
	if delivered != 0 {
		t.Fatal("crashed node received a message")
	}
	if c := n.Counters(); c.Get(CntLostDown) != 1 {
		t.Errorf("lost_down = %d, want 1", c.Get(CntLostDown))
	}

	// A crashed sender cannot send.
	n.Send(2, 0, "x", 2, nil)
	if c := n.Counters(); c.Get(CntLostDown) != 2 {
		t.Errorf("srcdown not accounted: %s", c)
	}

	if err := n.Restart(2); err != nil {
		t.Fatalf("restart: %v", err)
	}
	n.Send(0, 2, "x", 3, nil)
	s.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d after restart, want 1", delivered)
	}
	if len(crashes) != 1 || crashes[0] != 2 || len(restarts) != 1 || restarts[0] != 2 {
		t.Errorf("hooks: crashes=%v restarts=%v", crashes, restarts)
	}
	if err := n.AccountingError(); err != nil {
		t.Error(err)
	}
}

func TestHealAllClearsFaults(t *testing.T) {
	s, n := testNet(t, LinkFaults{DropProb: 1, LatencyBase: 0.5}, 1)
	n.Cut(0, 1)
	n.Crash(4)
	n.HealAll()
	delivered := 0
	n.Subscribe(4, "x", func(Message) { delivered++ })
	n.Send(0, 4, "x", 1, nil)
	s.Run()
	if delivered != 1 {
		t.Fatal("HealAll did not restore delivery")
	}
	if n.Down(4) {
		t.Error("node 4 still down after HealAll")
	}
	// Latency survives healing; only loss is cleared.
	if s.Now() == 0 {
		t.Error("HealAll should keep latency settings")
	}
}

func TestJitterReordersFrames(t *testing.T) {
	s, n := testNet(t, LinkFaults{LatencyBase: 0.1, LatencyJitter: 5}, 3)
	var order []uint64
	n.Subscribe(1, "x", func(m Message) { order = append(order, m.Seq) })
	for i := uint64(1); i <= 32; i++ {
		n.Send(0, 1, "x", i, nil)
	}
	s.Run()
	if len(order) != 32 {
		t.Fatalf("delivered %d of 32", len(order))
	}
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Error("32 jittered frames arrived in order; expected reordering")
	}
}

func TestNetworkDeterminism(t *testing.T) {
	run := func() (string, string) {
		s, n := testNet(t, LinkFaults{DropProb: 0.3, LatencyBase: 0.2, LatencyJitter: 0.7, ReorderProb: 0.2, ReorderExtra: 2}, 99)
		for id := NodeID(1); id < 7; id++ {
			n.Subscribe(id, "x", func(Message) {})
		}
		for i := 0; i < 50; i++ {
			n.Send(0, NodeID(1+i%6), "x", uint64(i), nil)
		}
		s.Run()
		return n.FormatLog(), n.Counters().String()
	}
	log1, c1 := run()
	log2, c2 := run()
	if log1 != log2 {
		t.Error("same-seed runs produced different message logs")
	}
	if c1 != c2 {
		t.Errorf("same-seed runs produced different counters: %s vs %s", c1, c2)
	}
	if !strings.Contains(log1, "drop") {
		t.Error("expected drops in the log at p=0.3")
	}
}

func TestFlowRetriesThroughLoss(t *testing.T) {
	s, n := testNet(t, LinkFaults{DropProb: 0.3, LatencyBase: 0.05}, 7)
	f, err := NewFlow(n, "t", 0, 1, FlowConfig{MaxRetries: 10})
	if err != nil {
		t.Fatalf("flow: %v", err)
	}
	got := map[uint64]bool{}
	f.OnDeliver = func(seq uint64, _ any) {
		if got[seq] {
			t.Errorf("payload seq %d delivered twice", seq)
		}
		got[seq] = true
	}
	f.OnGiveUp = func(seq uint64, _ any) { t.Errorf("gave up on seq %d", seq) }
	for i := 0; i < 30; i++ {
		f.Send(i)
	}
	s.Run()
	if len(got) != 30 {
		t.Fatalf("delivered %d of 30 payloads over a 30%% lossy link", len(got))
	}
	if n.Counters().Get(CntRetry) == 0 {
		t.Error("no retries recorded at 30% loss")
	}
	if err := n.AccountingError(); err != nil {
		t.Error(err)
	}
}

func TestFlowGivesUpAfterBudget(t *testing.T) {
	s, n := testNet(t, LinkFaults{DropProb: 1}, 7)
	f, err := NewFlow(n, "t", 0, 1, FlowConfig{MaxRetries: 3})
	if err != nil {
		t.Fatalf("flow: %v", err)
	}
	var gaveUp []uint64
	f.OnGiveUp = func(seq uint64, _ any) { gaveUp = append(gaveUp, seq) }
	f.Send("doomed")
	s.Run()
	if len(gaveUp) != 1 {
		t.Fatalf("give-ups = %v, want one", gaveUp)
	}
	// 1 original + 3 retries, all dropped.
	if c := n.Counters(); c.Get(CntRetry) != 3 || c.Get(CntGiveUp) != 1 || c.Get(CntDropped) != 4 {
		t.Errorf("counters: %s", c)
	}
}

func TestFlowDedupsWhenAcksAreLost(t *testing.T) {
	s, n := testNet(t, LinkFaults{}, 7)
	// Data flows cleanly 0->1 but every ack 1->0 is lost, forcing the
	// sender to retransmit; the receiver must suppress the duplicates.
	if err := n.SetLinkFaults(1, 0, LinkFaults{DropProb: 1}); err != nil {
		t.Fatalf("override: %v", err)
	}
	f, err := NewFlow(n, "t", 0, 1, FlowConfig{MaxRetries: 4})
	if err != nil {
		t.Fatalf("flow: %v", err)
	}
	delivered := 0
	f.OnDeliver = func(uint64, any) { delivered++ }
	f.Send("once")
	s.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d times, want exactly once", delivered)
	}
	if n.Counters().Get(CntDup) != 4 {
		t.Errorf("dup count = %d, want 4 (one per retry)", n.Counters().Get(CntDup))
	}
}

func TestEngineReplicatesAndConverges(t *testing.T) {
	s, n := testNet(t, LinkFaults{DropProb: 0.3, LatencyBase: 0.05, LatencyJitter: 0.1}, 11)
	e, err := NewEngine(n, EngineConfig{WindowSize: 4, ValueLo: 0, ValueHi: 100})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	for i := 0; i < 40; i++ {
		v := float64(i % 100)
		s.After(0, func() { e.OnData(v) })
		s.RunUntil(float64(i + 1))
	}
	// Let retransmissions and watchdog resyncs settle, then verify every
	// replica caught up to the source exactly.
	n.HealAll()
	s.RunUntil(s.Now() + 100)
	if err := e.Converged(); err != nil {
		t.Fatalf("replicas did not converge: %v", err)
	}
	if err := n.AccountingError(); err != nil {
		t.Error(err)
	}
}

func TestEngineStalenessBoundHolds(t *testing.T) {
	s, n := testNet(t, LinkFaults{LatencyBase: 0.01}, 11)
	e, err := NewEngine(n, EngineConfig{WindowSize: 4, ValueLo: -10, ValueHi: 10})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	feed := func(v float64) {
		s.After(0, func() { e.OnData(v) })
		s.RunUntil(s.Now() + 1)
	}
	for i := 0; i < 8; i++ {
		feed(float64(i%21) - 10)
	}
	// Partition node 3 behind its parent link and keep streaming: its
	// replica goes stale while the source moves on.
	if err := n.Cut(1, 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		feed(float64((8+i)%21) - 10)
	}
	if st := e.Staleness(3); st != 2 {
		t.Fatalf("staleness = %d, want 2", st)
	}
	q, err := query.New(query.Exponential, 0, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := e.Answer(3, q)
	if err != nil {
		t.Fatalf("answer: %v", err)
	}
	if !ans.Degraded || ans.Staleness != 2 {
		t.Errorf("answer not flagged degraded/stale: %+v", ans)
	}
	exact, err := query.Exact(e.SourceWindow(), q)
	if err != nil {
		t.Fatal(err)
	}
	if diff := ans.Value - exact; diff > ans.Bound+1e-12 || diff < -ans.Bound-1e-12 {
		t.Errorf("|%v - %v| = %v exceeds reported bound %v", ans.Value, exact, diff, ans.Bound)
	}
	// Ages >= staleness are served exactly from the shifted replica, so
	// the bound only covers the two newest (unknown) entries:
	// (1 + 1/2) * (hi-lo)/2 = 15.
	if ans.Bound != 15 {
		t.Errorf("bound = %v, want 15", ans.Bound)
	}
	// The root is never stale.
	if e.Staleness(0) != 0 {
		t.Error("root reported stale")
	}
	rootAns, err := e.Answer(0, q)
	if err != nil {
		t.Fatal(err)
	}
	if rootAns.Value != exact || rootAns.Degraded {
		t.Errorf("root answer %+v, want exact %v", rootAns, exact)
	}
}

func TestEngineCrashWipesReplicaAndResyncs(t *testing.T) {
	s, n := testNet(t, LinkFaults{LatencyBase: 0.01}, 11)
	e, err := NewEngine(n, EngineConfig{WindowSize: 4, ValueLo: 0, ValueHi: 100, WatchdogPeriod: 2})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	var evicted []NodeID
	e.SetCrashHook(func(id NodeID) { evicted = append(evicted, id) })
	for i := 0; i < 6; i++ {
		v := float64(10 * i)
		s.After(0, func() { e.OnData(v) })
		s.RunUntil(float64(i + 1))
	}
	n.Crash(2)
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("crash hook saw %v, want [2]", evicted)
	}
	if e.Staleness(2) != 6 {
		t.Errorf("crashed node staleness = %d, want 6 (volatile state lost)", e.Staleness(2))
	}
	n.Restart(2)
	// The watchdog notices the lag and pulls a snapshot.
	s.RunUntil(s.Now() + 20)
	if err := e.Converged(); err != nil {
		t.Fatalf("post-restart resync failed: %v", err)
	}
	if n.Counters().Get(CntResyncReq) == 0 || n.Counters().Get(CntResyncSnap) == 0 {
		t.Errorf("no resync traffic recorded: %s", n.Counters())
	}
}
