package netsim

import (
	"strings"
	"testing"

	"github.com/streamsum/swat/internal/durable"
)

func durableEngineCfg(dir string) EngineConfig {
	return EngineConfig{
		WindowSize:     4,
		ValueLo:        0,
		ValueHi:        100,
		WatchdogPeriod: 2,
		DataDir:        dir,
		Durable:        durable.Options{CheckpointEvery: 8},
	}
}

// TestDurableEngineRestartRecoversFromLog is the durable counterpart of
// TestEngineCrashWipesReplicaAndResyncs: the restarted node recovers
// its applied arrival counter from its window log, so right after the
// restart it is stale only by the arrivals it actually missed while
// down — not by the whole history.
func TestDurableEngineRestartRecoversFromLog(t *testing.T) {
	s, n := testNet(t, LinkFaults{LatencyBase: 0.01}, 11)
	e, err := NewEngine(n, durableEngineCfg(t.TempDir()))
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	defer e.Close()
	feed := func(v float64) {
		s.After(0, func() { e.OnData(v) })
		s.RunUntil(s.Now() + 1)
	}
	for i := 0; i < 6; i++ {
		feed(float64(10 * i))
	}
	if err := n.Crash(2); err != nil {
		t.Fatal(err)
	}
	// Volatile state is gone while down, exactly as without durability.
	if e.Staleness(2) != 6 {
		t.Errorf("crashed node staleness = %d, want 6", e.Staleness(2))
	}
	// Two arrivals pass the node by while it is down.
	feed(60)
	feed(70)
	if err := n.Restart(2); err != nil {
		t.Fatal(err)
	}
	rec := e.Recovered(2)
	if rec.Arrival != 6 {
		t.Fatalf("restart recovered arrival %d, want 6 (info: %s)", rec.Arrival, rec.Info)
	}
	// Bounded recovery staleness: only the two missed arrivals remain.
	if st := e.Staleness(2); st != 2 {
		t.Errorf("post-restart staleness = %d, want 2 (missed while down)", st)
	}
	s.RunUntil(s.Now() + 20)
	if err := e.Converged(); err != nil {
		t.Fatalf("post-restart resync failed: %v", err)
	}
}

// TestDurableEngineRebuildResumesSequence tears the whole engine down
// (process exit) and builds a fresh simulator + engine over the same
// data directory: the source resumes its arrival sequence and every
// replica starts where its log left off.
func TestDurableEngineRebuildResumesSequence(t *testing.T) {
	dir := t.TempDir()
	var history []float64

	s, n := testNet(t, LinkFaults{LatencyBase: 0.01}, 11)
	e, err := NewEngine(n, durableEngineCfg(dir))
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	for i := 0; i < 10; i++ {
		v := float64(i)
		history = append(history, v)
		s.After(0, func() { e.OnData(v) })
		s.RunUntil(s.Now() + 1)
	}
	s.RunUntil(s.Now() + 20)
	if err := e.Converged(); err != nil {
		t.Fatalf("pre-shutdown convergence: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s2, n2 := testNet(t, LinkFaults{LatencyBase: 0.01}, 12)
	e2, err := NewEngine(n2, durableEngineCfg(dir))
	if err != nil {
		t.Fatalf("rebuilt engine: %v", err)
	}
	defer e2.Close()
	if e2.Arrivals() != uint64(len(history)) {
		t.Fatalf("rebuilt source at arrival %d, want %d", e2.Arrivals(), len(history))
	}
	if root := e2.Recovered(0); root.Arrival != uint64(len(history)) {
		t.Fatalf("source recovery at arrival %d, want %d", root.Arrival, len(history))
	}
	for _, id := range n2.Topology().BFSOrder() {
		if id == n2.Topology().Root() {
			continue
		}
		rec := e2.Recovered(id)
		if rec.Arrival != uint64(len(history)) {
			t.Fatalf("node %d recovered arrival %d, want %d (info: %s)",
				id, rec.Arrival, len(history), rec.Info)
		}
	}
	// Everything is already in sync from disk: no resync traffic needed
	// for the engine to report convergence immediately.
	if err := e2.Converged(); err != nil {
		t.Fatalf("rebuilt engine not converged from logs alone: %v", err)
	}
	// And the sequence continues: new arrivals extend the logs.
	for i := 0; i < 5; i++ {
		v := float64(100 + i)
		s2.After(0, func() { e2.OnData(v) })
		s2.RunUntil(s2.Now() + 1)
	}
	s2.RunUntil(s2.Now() + 20)
	if err := e2.Converged(); err != nil {
		t.Fatalf("post-rebuild convergence: %v", err)
	}
	if e2.Arrivals() != uint64(len(history))+5 {
		t.Fatalf("arrival counter %d did not resume the sequence", e2.Arrivals())
	}
}

// TestDurableEngineLogHealth pins that durability failures surface
// through Converged instead of being dropped.
func TestDurableEngineLogHealth(t *testing.T) {
	_, n := testNet(t, LinkFaults{LatencyBase: 0.01}, 11)
	e, err := NewEngine(n, durableEngineCfg(t.TempDir()))
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	defer e.Close()
	if err := e.LogHealth(); err != nil {
		t.Fatalf("fresh engine unhealthy: %v", err)
	}
	e.noteLogErr(errFake)
	if err := e.Converged(); err == nil || !strings.Contains(err.Error(), "durability failure") {
		t.Fatalf("Converged did not surface the log error: %v", err)
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake disk failure" }
