// Package netsim models the distributed setting of the paper's second
// half: a spanning-tree network with the stream source at the root and
// clients below it. It provides tree topologies (including the complete
// binary trees of the multi-client experiments, §5.3), hop distances, and
// message accounting by kind. Protocol logic lives in the replication,
// dc, and aps packages; they all run over this substrate so their message
// counts are directly comparable.
//
//swat:deterministic
//swat:server
package netsim

import (
	"fmt"
	"math/rand"
	"sort"
)

// NodeID identifies a node in a topology. The root (the stream source)
// is always node 0.
type NodeID int

// NoNode is the parent of the root.
const NoNode NodeID = -1

// Topology is a rooted tree of network nodes.
type Topology struct {
	parent   []NodeID
	children [][]NodeID
}

// NewTopology creates a topology containing only the root node 0.
func NewTopology() *Topology {
	return &Topology{parent: []NodeID{NoNode}, children: [][]NodeID{nil}}
}

// Len returns the number of nodes.
func (t *Topology) Len() int { return len(t.parent) }

// Root returns the root node ID.
func (t *Topology) Root() NodeID { return 0 }

// Valid reports whether id names a node of this topology.
func (t *Topology) Valid(id NodeID) bool {
	return id >= 0 && int(id) < len(t.parent)
}

// AddChild attaches a new node under parent and returns its ID.
func (t *Topology) AddChild(parent NodeID) (NodeID, error) {
	if !t.Valid(parent) {
		return NoNode, fmt.Errorf("netsim: invalid parent %d", parent)
	}
	id := NodeID(len(t.parent))
	t.parent = append(t.parent, parent)
	t.children = append(t.children, nil)
	t.children[parent] = append(t.children[parent], id)
	return id, nil
}

// Parent returns the parent of id (NoNode for the root).
func (t *Topology) Parent(id NodeID) NodeID {
	if !t.Valid(id) {
		return NoNode
	}
	return t.parent[id]
}

// Children returns the children of id in attachment order.
func (t *Topology) Children(id NodeID) []NodeID {
	if !t.Valid(id) {
		return nil
	}
	return append([]NodeID(nil), t.children[id]...)
}

// IsLeaf reports whether id has no children.
func (t *Topology) IsLeaf(id NodeID) bool {
	return t.Valid(id) && len(t.children[id]) == 0
}

// Depth returns the number of edges from id to the root.
func (t *Topology) Depth(id NodeID) int {
	d := 0
	for t.Valid(id) && t.parent[id] != NoNode {
		id = t.parent[id]
		d++
	}
	return d
}

// Hops returns the tree distance between two nodes.
func (t *Topology) Hops(a, b NodeID) (int, error) {
	if !t.Valid(a) || !t.Valid(b) {
		return 0, fmt.Errorf("netsim: invalid nodes %d, %d", a, b)
	}
	da, db := t.Depth(a), t.Depth(b)
	hops := 0
	for da > db {
		a = t.parent[a]
		da--
		hops++
	}
	for db > da {
		b = t.parent[b]
		db--
		hops++
	}
	for a != b {
		a = t.parent[a]
		b = t.parent[b]
		hops += 2
	}
	return hops, nil
}

// Adjacent reports whether a and b share an edge.
func (t *Topology) Adjacent(a, b NodeID) bool {
	if !t.Valid(a) || !t.Valid(b) {
		return false
	}
	return t.parent[a] == b || t.parent[b] == a
}

// BFSOrder returns all node IDs in breadth-first order from the root —
// the deterministic processing order protocols use for phase-end sweeps.
func (t *Topology) BFSOrder() []NodeID {
	order := make([]NodeID, 0, t.Len())
	queue := []NodeID{t.Root()}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		queue = append(queue, t.children[id]...)
	}
	return order
}

// CompleteBinaryTree builds a topology of n nodes where node i has
// children 2i+1 and 2i+2 — the simulation topology of §5.3 ("a complete
// binary tree with the source at the root").
func CompleteBinaryTree(n int) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("netsim: need at least 1 node, got %d", n)
	}
	t := NewTopology()
	for i := 1; i < n; i++ {
		if _, err := t.AddChild(NodeID((i - 1) / 2)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Chain builds a linear topology root=0 — 1 — 2 — ... — (n-1), used by
// single-client (n=2) and deep-path experiments.
func Chain(n int) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("netsim: need at least 1 node, got %d", n)
	}
	t := NewTopology()
	prev := t.Root()
	for i := 1; i < n; i++ {
		id, err := t.AddChild(prev)
		if err != nil {
			return nil, err
		}
		prev = id
	}
	return t, nil
}

// Counter accumulates message costs by kind. A message traversing h tree
// hops costs h, so flat client-server protocols running over a deep tree
// pay for the path while hop-by-hop protocols pay per edge.
type Counter struct {
	byKind map[string]uint64
	total  uint64
}

// NewCounter creates an empty counter.
func NewCounter() *Counter {
	return &Counter{byKind: make(map[string]uint64)}
}

// Count records a message of the given kind crossing hops edges.
func (c *Counter) Count(kind string, hops int) {
	if hops <= 0 {
		return
	}
	c.byKind[kind] += uint64(hops)
	c.total += uint64(hops)
}

// Total returns the total message cost recorded.
func (c *Counter) Total() uint64 { return c.total }

// Kind returns the cost recorded for one message kind.
func (c *Counter) Kind(kind string) uint64 { return c.byKind[kind] }

// Kinds returns the recorded kinds in sorted order.
func (c *Counter) Kinds() []string {
	out := make([]string, 0, len(c.byKind))
	for k := range c.byKind {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Reset zeroes all counts.
func (c *Counter) Reset() {
	c.byKind = make(map[string]uint64)
	c.total = 0
}

// RandomTree builds a topology of n nodes where each new node attaches
// to a uniformly random existing node — the preferential-attachment-free
// random recursive tree, useful for robustness checks beyond the
// regular shapes of the paper's experiments.
func RandomTree(seed int64, n int) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("netsim: need at least 1 node, got %d", n)
	}
	t := NewTopology()
	rng := rand.New(rand.NewSource(seed))
	for i := 1; i < n; i++ {
		if _, err := t.AddChild(NodeID(rng.Intn(t.Len()))); err != nil {
			return nil, err
		}
	}
	return t, nil
}
