package netsim

import (
	"fmt"
	"math"
)

// Flow is a reliable unidirectional channel between two nodes layered on
// the lossy Network: every payload gets a transport sequence number, the
// receiver acknowledges each frame, and the sender retransmits with
// exponential backoff until an ack arrives or the retry budget is
// exhausted (timeout-based failover: OnGiveUp fires and the payload is
// abandoned — higher layers recover via resynchronization). Delivery is
// at-least-once with receiver-side dedup, so OnDeliver sees each payload
// at most once, though possibly out of order.
type Flow struct {
	net  *Network
	name string
	src  NodeID
	dst  NodeID

	retryBase   float64
	retryFactor float64
	maxRetries  int

	nextSeq uint64
	acked   map[uint64]bool
	seen    map[uint64]bool

	// OnDeliver receives each payload exactly once at the destination.
	OnDeliver func(seq uint64, payload any)
	// OnGiveUp fires at the source after the last retry times out
	// unacknowledged.
	OnGiveUp func(seq uint64, payload any)
}

// Flow counter names (recorded in the owning network's counter set).
const (
	CntRetry  = "flow_retry"  // retransmissions
	CntGiveUp = "flow_giveup" // payloads abandoned after the retry budget
	CntDup    = "flow_dup"    // duplicate data frames suppressed at the receiver
	CntAck    = "flow_ack"    // acks issued by the receiver
)

// FlowConfig tunes a reliable flow's retransmission behavior.
type FlowConfig struct {
	// RetryBase is the first retransmission timeout; retry i waits
	// RetryBase·RetryFactor^i. 0 means 0.5 time units.
	RetryBase float64
	// RetryFactor is the exponential backoff factor. 0 means 2.
	RetryFactor float64
	// MaxRetries bounds retransmissions per payload; after the last
	// timeout the payload is abandoned. 0 means 4; negative means no
	// retries at all (send once).
	MaxRetries int
}

func (c FlowConfig) withDefaults() (FlowConfig, error) {
	if c.RetryBase == 0 {
		c.RetryBase = 0.5
	}
	if c.RetryFactor == 0 {
		c.RetryFactor = 2
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 4
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBase < 0 || math.IsNaN(c.RetryBase) || math.IsInf(c.RetryBase, 0) {
		return c, fmt.Errorf("netsim: invalid retry base %v", c.RetryBase)
	}
	if c.RetryFactor < 1 || math.IsNaN(c.RetryFactor) || math.IsInf(c.RetryFactor, 0) {
		return c, fmt.Errorf("netsim: retry factor %v must be >= 1", c.RetryFactor)
	}
	return c, nil
}

// NewFlow creates a reliable src→dst flow named name over the network and
// registers its frame handlers. Frames travel as kind "data/<name>" and
// acks as "ack/<name>", so each (node pair, name) combination must be
// unique per receiving node.
func NewFlow(net *Network, name string, src, dst NodeID, cfg FlowConfig) (*Flow, error) {
	if net == nil {
		return nil, fmt.Errorf("netsim: flow needs a network")
	}
	if !net.top.Valid(src) || !net.top.Valid(dst) || src == dst {
		return nil, fmt.Errorf("netsim: invalid flow endpoints %d->%d", src, dst)
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	f := &Flow{
		net:         net,
		name:        name,
		src:         src,
		dst:         dst,
		retryBase:   cfg.RetryBase,
		retryFactor: cfg.RetryFactor,
		maxRetries:  cfg.MaxRetries,
		acked:       make(map[uint64]bool),
		seen:        make(map[uint64]bool),
	}
	if err := net.Subscribe(dst, f.dataKind(), f.handleData); err != nil {
		return nil, err
	}
	if err := net.Subscribe(src, f.ackKind(), f.handleAck); err != nil {
		return nil, err
	}
	return f, nil
}

func (f *Flow) dataKind() string { return "data/" + f.name }
func (f *Flow) ackKind() string  { return "ack/" + f.name }

// Send transmits payload reliably and returns its transport sequence
// number. The first attempt goes out immediately; unacknowledged frames
// are retransmitted with exponential backoff up to the retry budget.
func (f *Flow) Send(payload any) uint64 {
	f.nextSeq++
	seq := f.nextSeq
	f.attempt(seq, payload, 0)
	return seq
}

// attempt transmits try-th copy of seq and arms its retransmission timer.
func (f *Flow) attempt(seq uint64, payload any, try int) {
	if try > 0 {
		f.net.counters.Add(CntRetry, 1)
	}
	f.net.Send(f.src, f.dst, f.dataKind(), seq, payload)
	timeout := f.retryBase * math.Pow(f.retryFactor, float64(try))
	f.net.sim.After(timeout, func() {
		if f.acked[seq] {
			delete(f.acked, seq) // retire bookkeeping for acked frames
			return
		}
		if try >= f.maxRetries {
			f.net.counters.Add(CntGiveUp, 1)
			if f.OnGiveUp != nil {
				f.OnGiveUp(seq, payload)
			}
			return
		}
		if f.net.Down(f.src) {
			// A crashed sender stops retrying; the payload is abandoned
			// without a give-up callback (the node lost its state).
			return
		}
		f.attempt(seq, payload, try+1)
	})
}

// handleData runs at the destination: dedup, deliver, ack.
func (f *Flow) handleData(m Message) {
	if f.seen[m.Seq] {
		f.net.counters.Add(CntDup, 1)
	} else {
		f.seen[m.Seq] = true
		if f.OnDeliver != nil {
			f.OnDeliver(m.Seq, m.Payload)
		}
	}
	f.net.counters.Add(CntAck, 1)
	f.net.Send(f.dst, f.src, f.ackKind(), m.Seq, nil)
}

// handleAck runs at the source.
func (f *Flow) handleAck(m Message) {
	f.acked[m.Seq] = true
}
