package experiments

import (
	"fmt"

	"github.com/streamsum/swat/internal/netsim"
	"github.com/streamsum/swat/internal/netsim/scenario"
)

func init() {
	register("lossy", runLossy)
}

// runLossy is the lossy-network ablation: the three replication
// protocols (SWAT-ASR, DC, APS) deployed over the fault-injected
// substrate, swept across ambient per-link drop probabilities. Loss is
// injected once the windows are warm and healed shortly before the end,
// so the table shows both how the reliable transport absorbs loss
// (retries, resyncs, degraded answers with explicit bounds) and that
// every replica reconverges to the source once the network heals.
func runLossy(scale Scale) (*Result, error) {
	drops := []float64{0, 0.1, 0.25, 0.5}
	dataCount := 60
	if scale == Paper {
		dataCount = 240
	}
	res := &Result{
		ID:          "lossy",
		Description: "replication protocols over a lossy network: transport overhead and graceful degradation vs drop rate",
	}
	tab := &Table{
		Title: fmt.Sprintf("fault-injected substrate, 7-node binary tree, %d arrivals, loss healed before the end", dataCount),
		Columns: []string{"protocol", "drop", "sent", "delivered", "dropped",
			"retries", "giveups", "resyncs", "degraded", "meanbound", "reconverged"},
	}
	worstDegraded := 0.0
	for _, proto := range []string{"asr", "dc", "aps"} {
		for _, p := range drops {
			var script scenario.Script
			if p > 0 {
				script = scenario.Script{
					scenario.DropAllAt(10, p),
					scenario.HealAllAt(float64(dataCount) - 15),
				}
			}
			h, err := scenario.New(scenario.Config{
				Protocol:  proto,
				Seed:      11,
				DataCount: dataCount,
				Faults:    netsim.LinkFaults{LatencyBase: 0.01},
				Script:    script,
			})
			if err != nil {
				return nil, err
			}
			h.Net.SetLogging(false)
			run, err := h.Run()
			if err != nil {
				return nil, err
			}
			if len(run.Violations) != 0 {
				return nil, fmt.Errorf("experiments: lossy run %s/%g violated invariants: %v",
					proto, p, run.Violations)
			}
			answered, degraded := 0, 0
			for _, a := range run.Answers {
				if a.Err != "" {
					continue
				}
				answered++
				if a.Ans.Degraded {
					degraded++
				}
			}
			degFrac := 0.0
			if answered > 0 {
				degFrac = float64(degraded) / float64(answered)
			}
			if degFrac > worstDegraded {
				worstDegraded = degFrac
			}
			_, bounds := h.Dep.Engine().StalenessStats()
			converged := "yes"
			if err := h.Dep.Engine().Converged(); err != nil {
				converged = "NO"
			}
			c := h.Net.Counters()
			tab.AddRow(h.Dep.Name(), f(p),
				fmt.Sprint(c.Get(netsim.CntSent)),
				fmt.Sprint(c.Get(netsim.CntDelivered)),
				fmt.Sprint(c.Get(netsim.CntDropped)),
				fmt.Sprint(c.Get(netsim.CntRetry)),
				fmt.Sprint(c.Get(netsim.CntGiveUp)),
				fmt.Sprint(c.Get(netsim.CntResyncReq)),
				f(degFrac),
				f(bounds.Mean()),
				converged)
			if converged == "NO" {
				return nil, fmt.Errorf("experiments: %s did not reconverge after healing at drop=%g", proto, p)
			}
		}
	}
	res.Tables = append(res.Tables, tab)
	res.Notes = append(res.Notes,
		"every degraded answer carried a staleness bound verified against the exact value; zero silent wrong answers",
		fmt.Sprintf("worst-case degraded-answer fraction across the sweep: %s", f(worstDegraded)),
		"all replicas reconverged to the source window after the network healed, at every drop rate")
	return res, nil
}
