package experiments

import (
	"fmt"

	"github.com/streamsum/swat/internal/histogram"
)

func init() {
	register("ablation-bucketing", ablationBucketing)
}

// ablationBucketing compares bucketing strategies for the histogram
// baseline at equal budget: the (1+ε)-approximate V-optimal construction
// the paper benchmarks, the exact V-optimal DP, and the classical
// equi-width and equi-depth heuristics — quantifying why the paper's
// baseline is the strong one.
func ablationBucketing(scale Scale) (*Result, error) {
	n := 512
	if scale == Paper {
		n = 1024
	}
	const b = 30
	tab := &Table{
		Title:   fmt.Sprintf("Total SSE by bucketing strategy (window %d, B=%d)", n, b),
		Columns: []string{"dataset", "V-optimal (exact)", "GK approx (eps=0.1)", "equi-width", "equi-depth"},
	}
	for _, data := range []string{"real", "synthetic"} {
		src, err := dataSource(data, 33)
		if err != nil {
			return nil, err
		}
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = src.Next()
		}
		_, opt, err := histogram.VOptimal(vals, b)
		if err != nil {
			return nil, err
		}
		s, err := histogram.New(histogram.Options{WindowSize: n, Buckets: b, Epsilon: 0.1})
		if err != nil {
			return nil, err
		}
		for _, v := range vals {
			s.Update(v)
		}
		gk, err := s.Build()
		if err != nil {
			return nil, err
		}
		ew, err := histogram.EquiWidth(vals, b)
		if err != nil {
			return nil, err
		}
		ed, err := histogram.EquiDepth(vals, b)
		if err != nil {
			return nil, err
		}
		tab.AddRow(data, f(opt), f(gk.SSE), f(ew.SSE), f(ed.SSE))
	}
	return &Result{
		ID:          "ablation-bucketing",
		Description: "histogram bucketing strategies at equal budget",
		Tables:      []*Table{tab},
		Notes: []string{
			"the GK approximation stays within (1+eps) of exact V-optimal; the classical heuristics are the weak baselines the paper rightly avoids",
		},
	}, nil
}
