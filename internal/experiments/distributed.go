package experiments

import (
	"fmt"
	"math/rand"

	"github.com/streamsum/swat/internal/aps"
	"github.com/streamsum/swat/internal/dc"
	"github.com/streamsum/swat/internal/netsim"
	"github.com/streamsum/swat/internal/query"
	"github.com/streamsum/swat/internal/replication"
	"github.com/streamsum/swat/internal/sim"
	"github.com/streamsum/swat/internal/stream"
)

// This file regenerates the distributed replication experiments of §5
// (Figs. 9 and 10) and the Table 1 directory snapshot. The three
// protocols — SWAT-ASR, Divergence Caching, and Adaptive Precision
// Setting — run over the same discrete-event schedule and topology, and
// the cost metric is the number of exchanged messages (hop-weighted, so
// flat client-server protocols pay for the tree path they traverse).

func init() {
	register("fig9a", func(s Scale) (*Result, error) { return fig9Ratio(s, "fig9a", "real") })
	register("fig9b", func(s Scale) (*Result, error) { return fig9Ratio(s, "fig9b", "synthetic") })
	register("fig9c", fig9c)
	register("fig10a", fig10a)
	register("fig10b", fig10b)
	register("tab1", tab1)
}

// distConfig drives one distributed run.
type distConfig struct {
	topology    *netsim.Topology
	window      int
	data        string
	seed        int64
	dataPeriod  float64
	queryPeriod float64
	phaseLength float64
	duration    float64 // measured simulated time after warm-up
	precision   float64
	queryLen    int
	clients     []netsim.NodeID // nil = every non-root node
}

// buildProtocols constructs the three competitors for a config.
func buildProtocols(cfg distConfig) ([]Protocol, error) {
	asr, err := replication.New(cfg.topology, cfg.window)
	if err != nil {
		return nil, err
	}
	lo, hi := 0.0, 100.0
	if cfg.data == "real" {
		lo, hi = 0.0, 50.0 // weather data lives in [6, 44] °C
	}
	dcSys, err := dc.New(cfg.topology, dc.Options{
		WindowSize: cfg.window, ValueLo: lo, ValueHi: hi,
	})
	if err != nil {
		return nil, err
	}
	apsSys, err := aps.New(cfg.topology, aps.Options{WindowSize: cfg.window})
	if err != nil {
		return nil, err
	}
	return []Protocol{asr, dcSys, apsSys}, nil
}

// runDistributed drives one protocol through the simulated schedule and
// returns the number of messages exchanged during the measured window.
func runDistributed(p Protocol, cfg distConfig) (uint64, error) {
	s := sim.New()
	src, err := dataSource(cfg.data, cfg.seed)
	if err != nil {
		return 0, err
	}
	clients := cfg.clients
	if clients == nil {
		for _, id := range cfg.topology.BFSOrder() {
			if id != cfg.topology.Root() {
				clients = append(clients, id)
			}
		}
	}
	setTime := func() {
		if ta, ok := p.(timeAware); ok {
			ta.SetTime(s.Now())
		}
	}
	var runErr error
	fail := func(err error) {
		if runErr == nil && err != nil {
			runErr = err
		}
	}
	if _, err := s.Every(0, cfg.dataPeriod, func() {
		setTime()
		p.OnData(src.Next())
	}); err != nil {
		return 0, err
	}
	// Queries start after the warm-up so protocols never see a partial
	// window; stagger clients to avoid artificial same-instant bursts.
	warm := cfg.dataPeriod * float64(cfg.window+1)
	rng := rand.New(rand.NewSource(cfg.seed + 7))
	for ci, client := range clients {
		client := client
		gen, err := query.NewGenerator(query.Linear, query.Random, cfg.window, cfg.queryLen, cfg.precision, cfg.seed+int64(ci)*101)
		if err != nil {
			return 0, err
		}
		start := warm + cfg.queryPeriod*rng.Float64()
		if _, err := s.Every(start, cfg.queryPeriod, func() {
			setTime()
			if _, err := p.OnQuery(client, gen.Next()); err != nil {
				fail(err)
			}
		}); err != nil {
			return 0, err
		}
	}
	if _, err := s.Every(warm, cfg.phaseLength, func() {
		setTime()
		p.OnPhaseEnd()
	}); err != nil {
		return 0, err
	}
	// Warm up, reset counters, then measure.
	measureStart := warm + cfg.phaseLength*2
	s.RunUntil(measureStart)
	if runErr != nil {
		return 0, runErr
	}
	p.Messages().Reset()
	s.RunUntil(measureStart + cfg.duration)
	if runErr != nil {
		return 0, runErr
	}
	return p.Messages().Total(), nil
}

// fig9Ratio sweeps the data-period / query-period ratio for a single
// client (Fig. 9(a) real data, Fig. 9(b) synthetic data).
func fig9Ratio(scale Scale, id, data string) (*Result, error) {
	duration := 2000.0
	if scale == Quick {
		duration = 600
	}
	ratios := []float64{0.125, 0.25, 0.5, 1, 2, 4, 8}
	tab := &Table{
		Title: fmt.Sprintf("Messages vs Td/Tq ratio, single client, %s data (N=32, Tq=1, duration %g)",
			data, duration),
		Columns: []string{"Td/Tq", "SWAT-ASR", "DC", "APS"},
	}
	var rows [][3]uint64
	for _, ratio := range ratios {
		top, err := netsim.Chain(2)
		if err != nil {
			return nil, err
		}
		cfg := distConfig{
			topology: top, window: 32, data: data, seed: 9,
			dataPeriod: ratio, queryPeriod: 1, phaseLength: 25,
			duration: duration, precision: 20, queryLen: 8,
		}
		var cells [3]uint64
		protos, err := buildProtocols(cfg)
		if err != nil {
			return nil, err
		}
		for i, p := range protos {
			msgs, err := runDistributed(p, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s at ratio %g: %w", p.Name(), ratio, err)
			}
			cells[i] = msgs
		}
		rows = append(rows, cells)
		tab.AddRow(fmt.Sprintf("%g", ratio),
			fmt.Sprintf("%d", cells[0]), fmt.Sprintf("%d", cells[1]), fmt.Sprintf("%d", cells[2]))
	}
	// Summary: ASR vs best competitor in the read-heavy regime (large
	// Td/Tq, rare writes).
	last := rows[len(rows)-1]
	best := last[1]
	if last[2] < best {
		best = last[2]
	}
	note := fmt.Sprintf("read-heavy regime (Td/Tq=8): ASR %d vs best competitor %d messages", last[0], best)
	return &Result{
		ID:          id,
		Description: fmt.Sprintf("message cost vs data/query rate ratio, single client, %s data", data),
		Tables:      []*Table{tab},
		Notes: []string{
			note,
			"paper: all protocols cache in the read-heavy regime; DC and SWAT-ASR quickly stop caching in the write-heavy regime",
		},
	}, nil
}

func fig9c(scale Scale) (*Result, error) {
	duration := 2000.0
	if scale == Quick {
		duration = 600
	}
	precisions := []float64{2, 5, 10, 20, 40, 80}
	tab := &Table{
		Title:   fmt.Sprintf("Messages vs precision requirement, single client, real data (N=32, Tq=1, Td=2, duration %g)", duration),
		Columns: []string{"precision δ", "SWAT-ASR", "DC", "APS"},
	}
	var firstRow [3]uint64
	for pi, prec := range precisions {
		top, err := netsim.Chain(2)
		if err != nil {
			return nil, err
		}
		cfg := distConfig{
			topology: top, window: 32, data: "real", seed: 13,
			dataPeriod: 2, queryPeriod: 1, phaseLength: 25,
			duration: duration, precision: prec, queryLen: 8,
		}
		protos, err := buildProtocols(cfg)
		if err != nil {
			return nil, err
		}
		var cells [3]uint64
		for i, p := range protos {
			msgs, err := runDistributed(p, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s at precision %g: %w", p.Name(), prec, err)
			}
			cells[i] = msgs
		}
		if pi == 0 {
			firstRow = cells
		}
		tab.AddRow(fmt.Sprintf("%g", prec),
			fmt.Sprintf("%d", cells[0]), fmt.Sprintf("%d", cells[1]), fmt.Sprintf("%d", cells[2]))
	}
	gDC, gAPS := ratioOrZero(firstRow[1], firstRow[0]), ratioOrZero(firstRow[2], firstRow[0])
	return &Result{
		ID:          "fig9c",
		Description: "message cost vs precision requirement, single client, real data",
		Tables:      []*Table{tab},
		Notes: []string{
			fmt.Sprintf("at the tightest precision, ASR gain: %.1fx vs DC, %.1fx vs APS (paper: up to 4x vs DC, 5x vs APS)", gDC, gAPS),
		},
	}, nil
}

func fig10a(scale Scale) (*Result, error) {
	duration := 1500.0
	if scale == Quick {
		duration = 400
	}
	treeSizes := []int{3, 7, 15}
	if scale == Paper {
		treeSizes = []int{3, 7, 15, 31}
	}
	tab := &Table{
		Title:   fmt.Sprintf("Messages vs number of clients, complete binary tree, weather data (N=64, duration %g)", duration),
		Columns: []string{"clients", "SWAT-ASR", "DC", "APS"},
	}
	var lastRow [3]uint64
	for _, nodes := range treeSizes {
		top, err := netsim.CompleteBinaryTree(nodes)
		if err != nil {
			return nil, err
		}
		cfg := distConfig{
			topology: top, window: 64, data: "real", seed: 17,
			dataPeriod: 2, queryPeriod: 1, phaseLength: 25,
			duration: duration, precision: 20, queryLen: 8,
		}
		protos, err := buildProtocols(cfg)
		if err != nil {
			return nil, err
		}
		var cells [3]uint64
		for i, p := range protos {
			msgs, err := runDistributed(p, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s with %d nodes: %w", p.Name(), nodes, err)
			}
			cells[i] = msgs
		}
		lastRow = cells
		tab.AddRow(fmt.Sprintf("%d", nodes-1),
			fmt.Sprintf("%d", cells[0]), fmt.Sprintf("%d", cells[1]), fmt.Sprintf("%d", cells[2]))
	}
	return &Result{
		ID:          "fig10a",
		Description: "message cost vs number of clients, binary-tree topology, weather data",
		Tables:      []*Table{tab},
		Notes: []string{
			fmt.Sprintf("largest tree: DC/ASR = %.1fx, APS/ASR = %.1fx (paper: DC up to 3x, APS up to 4x more messages than SWAT-ASR)",
				ratioOrZero(lastRow[1], lastRow[0]), ratioOrZero(lastRow[2], lastRow[0])),
		},
	}, nil
}

func fig10b(scale Scale) (*Result, error) {
	duration := 1500.0
	if scale == Quick {
		duration = 400
	}
	precisions := []float64{5, 10, 20, 40, 80}
	tab := &Table{
		Title:   fmt.Sprintf("Messages vs precision, 6-client binary tree, synthetic data (N=64, duration %g)", duration),
		Columns: []string{"precision δ", "SWAT-ASR", "DC", "APS"},
	}
	var firstRow [3]uint64
	for pi, prec := range precisions {
		top, err := netsim.CompleteBinaryTree(7)
		if err != nil {
			return nil, err
		}
		cfg := distConfig{
			topology: top, window: 64, data: "synthetic", seed: 23,
			dataPeriod: 2, queryPeriod: 1, phaseLength: 25,
			duration: duration, precision: prec, queryLen: 8,
		}
		protos, err := buildProtocols(cfg)
		if err != nil {
			return nil, err
		}
		var cells [3]uint64
		for i, p := range protos {
			msgs, err := runDistributed(p, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s at precision %g: %w", p.Name(), prec, err)
			}
			cells[i] = msgs
		}
		if pi == 0 {
			firstRow = cells
		}
		tab.AddRow(fmt.Sprintf("%g", prec),
			fmt.Sprintf("%d", cells[0]), fmt.Sprintf("%d", cells[1]), fmt.Sprintf("%d", cells[2]))
	}
	return &Result{
		ID:          "fig10b",
		Description: "message cost vs precision, 6-client binary tree, synthetic data",
		Tables:      []*Table{tab},
		Notes: []string{
			fmt.Sprintf("tightest precision: DC/ASR = %.1fx, APS/ASR = %.1fx (paper: SWAT-ASR better by a factor of 3-4)",
				ratioOrZero(firstRow[1], firstRow[0]), ratioOrZero(firstRow[2], firstRow[0])),
		},
	}, nil
}

// tab1 reproduces the directory structure of Table 1: a 16-value window
// at the source with two subscribed children, printed as segment rows.
func tab1(Scale) (*Result, error) {
	top := netsim.NewTopology()
	c1, err := top.AddChild(top.Root())
	if err != nil {
		return nil, err
	}
	c2, err := top.AddChild(top.Root())
	if err != nil {
		return nil, err
	}
	sys, err := replication.New(top, 16)
	if err != nil {
		return nil, err
	}
	src := stream.Weather(3)
	for i := 0; i < 16; i++ {
		sys.OnData(src.Next())
	}
	sys.OnPhaseEnd()
	// Subscribe C1 to the first segment and C2 to everything by driving
	// reads, as in the paper's example directory.
	q01, err := query.New(query.Linear, 0, 2, 50)
	if err != nil {
		return nil, err
	}
	qAll, err := query.New(query.Linear, 0, 16, 200)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 3; i++ {
		if _, err := sys.OnQuery(c1, q01); err != nil {
			return nil, err
		}
		if _, err := sys.OnQuery(c2, qAll); err != nil {
			return nil, err
		}
	}
	sys.OnPhaseEnd()
	rows, err := sys.Directory(top.Root())
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Title:   "Source directory after subscriptions (cf. paper Table 1)",
		Columns: []string{"window segment", "data range", "subscription list"},
	}
	for _, r := range rows {
		subs := ""
		for i, id := range r.Subscribed {
			if i > 0 {
				subs += ", "
			}
			subs += fmt.Sprintf("C%d", id)
		}
		tab.AddRow(r.Segment.String(), fmt.Sprintf("[%.1f, %.1f]", r.Range.Lo, r.Range.Hi), subs)
	}
	return &Result{
		ID:          "tab1",
		Description: "general directory structure of the SWAT-ASR scheme",
		Tables:      []*Table{tab},
		Notes: []string{
			"one row per level of the approximation tree (level 0 has two), O(log N) rows total",
		},
	}, nil
}

func ratioOrZero(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
