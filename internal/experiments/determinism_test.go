package experiments

import (
	"strings"
	"testing"
)

// render flattens a Result into its printed form for byte comparison.
func render(t *testing.T, id string) string {
	t.Helper()
	res, err := Run(id, Quick)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var b strings.Builder
	res.Fprint(&b)
	return b.String()
}

// TestExperimentsAreDeterministic re-runs a representative slice of the
// experiment registry — a centralized error study, a distributed
// replication study, and the fault-injected lossy sweep — and requires
// byte-identical output. Every random choice in the pipeline (stream
// values, query workloads, topologies, fault draws) must come from an
// injected seeded RNG, never the shared global one; any stowaway use of
// the global RNG or map-iteration nondeterminism shows up here as a
// diff between runs.
func TestExperimentsAreDeterministic(t *testing.T) {
	for _, id := range []string{"fig4a", "fig9c", "lossy"} {
		id := id
		t.Run(id, func(t *testing.T) {
			first := render(t, id)
			second := render(t, id)
			if first != second {
				t.Errorf("experiment %q is not deterministic across same-process runs", id)
			}
		})
	}
}
