package experiments

import "testing"

// TestLossyAblation exercises the lossy-network sweep at quick scale;
// runLossy itself fails on any invariant violation or reconvergence
// failure, so a clean return is the assertion.
func TestLossyAblation(t *testing.T) {
	res, err := Run("lossy", Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != 12 {
		t.Fatalf("expected 12 sweep rows (3 protocols x 4 drop rates), got %+v", res.Tables)
	}
}
