package experiments

import (
	"fmt"
	"time"

	"github.com/streamsum/swat/internal/core"
	"github.com/streamsum/swat/internal/histogram"
	"github.com/streamsum/swat/internal/metrics"
	"github.com/streamsum/swat/internal/query"
	"github.com/streamsum/swat/internal/stream"
)

// This file regenerates the centralized experiments of §2.7:
// Fig. 4 (SWAT error behaviour), Fig. 5 (SWAT vs Histogram approximation
// quality), and Fig. 6 (maintenance and query response time).

// timeOp measures the wall-clock duration of f. The Fig. 6 experiments
// report real maintenance and query-response times, so the wall clock
// is the measurement, not incidental nondeterminism; the timing tables
// are therefore excluded from the golden determinism comparisons
// (determinism_test covers fig4a/fig9c/lossy, whose outputs carry no
// durations). Keeping the only wall-clock reads of the package inside
// this helper keeps the seededrand waiver in one audited place.
func timeOp(f func()) time.Duration {
	start := time.Now() //lint:allow seededrand intentional wall-clock measurement; timings are reported, never golden-compared
	f()
	return time.Since(start) //lint:allow seededrand intentional wall-clock measurement; timings are reported, never golden-compared
}

func init() {
	register("fig4a", fig4a)
	register("fig4b", fig4b)
	register("fig4c", fig4c)
	register("fig5a", func(s Scale) (*Result, error) { return fig5Fixed(s, "fig5a", "real", 0.1, relMetric) })
	register("fig5b", func(s Scale) (*Result, error) { return fig5Fixed(s, "fig5b", "real", 0.1, absMetric) })
	register("fig5c", func(s Scale) (*Result, error) { return fig5Fixed(s, "fig5c", "synthetic", 0.001, relMetric) })
	register("fig5d", func(s Scale) (*Result, error) { return fig5Random(s, "fig5d", "real", query.Linear) })
	register("fig5e", func(s Scale) (*Result, error) { return fig5Random(s, "fig5e", "real", query.Exponential) })
	register("fig5f", fig5f)
	register("fig6a", fig6a)
	register("fig6b", fig6b)
}

// swatSeries runs the Fig. 4(a)/(b) workload: a SWAT tree over synthetic
// data, the same exponential inner-product query executed at every
// arrival, relative error recorded per arrival.
func swatSeries(scale Scale) (*metrics.Series, int, error) {
	const n = 256
	arrivals := 10000 // "observes 10K incoming points"
	if scale == Quick {
		arrivals = 2000
	}
	tree, err := core.New(core.Options{WindowSize: n})
	if err != nil {
		return nil, 0, err
	}
	shadow, err := stream.NewWindow(n)
	if err != nil {
		return nil, 0, err
	}
	src := stream.Uniform(4)
	q, err := query.New(query.Exponential, 0, n/4, 0)
	if err != nil {
		return nil, 0, err
	}
	for i := 0; i < 2*n; i++ { // warm up
		v := src.Next()
		tree.Update(v)
		shadow.Push(v)
	}
	var series metrics.Series
	for i := 0; i < arrivals; i++ {
		v := src.Next()
		tree.Update(v)
		shadow.Push(v)
		approx, err := query.Approx(tree, q)
		if err != nil {
			return nil, 0, err
		}
		exact, err := query.Exact(shadow, q)
		if err != nil {
			return nil, 0, err
		}
		series.Append(metrics.Relative(approx, exact))
	}
	return &series, arrivals, nil
}

func fig4a(scale Scale) (*Result, error) {
	series, arrivals, err := swatSeries(scale)
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Title:   fmt.Sprintf("Relative error of the fixed exponential query over time (N=256, synthetic, %d arrivals)", arrivals),
		Columns: []string{"time", "relative error (bucket mean)"},
	}
	means, times := series.Downsample(20)
	for i := range means {
		tab.AddRow(fmt.Sprintf("%d", times[i]), f(means[i]))
	}
	var acc metrics.Accumulator
	for _, v := range series.Values() {
		acc.Add(v)
	}
	return &Result{
		ID:          "fig4a",
		Description: "relative error for exponential inner product queries, fixed query mode",
		Tables:      []*Table{tab},
		Notes: []string{
			fmt.Sprintf("mean relative error %.5f, max %.5f (paper: periodic spikes, small average)", acc.Mean(), acc.Max()),
		},
	}, nil
}

func fig4b(scale Scale) (*Result, error) {
	series, arrivals, err := swatSeries(scale)
	if err != nil {
		return nil, err
	}
	cum := series.CumulativeMean()
	tab := &Table{
		Title:   fmt.Sprintf("Cumulative (running mean) relative error over time (N=256, synthetic, %d arrivals)", arrivals),
		Columns: []string{"time", "cumulative error"},
	}
	step := len(cum) / 20
	if step == 0 {
		step = 1
	}
	for i := step - 1; i < len(cum); i += step {
		tab.AddRow(fmt.Sprintf("%d", i), f(cum[i]))
	}
	final := cum[len(cum)-1]
	return &Result{
		ID:          "fig4b",
		Description: "cumulative error for exponential inner product queries, fixed query mode",
		Tables:      []*Table{tab},
		Notes: []string{
			fmt.Sprintf("final cumulative error %.5f (paper: \"quite small, around 0.01\")", final),
		},
	}, nil
}

func fig4c(scale Scale) (*Result, error) {
	const n = 512 // paper: "window size of 512"
	arrivals := 4096
	if scale == Quick {
		arrivals = 1024
	}
	tab := &Table{
		Title:   "Average absolute error vs number of maintained levels (N=512, smooth data)",
		Columns: []string{"levels kept", "min level", "exp query abs err", "linear query abs err"},
	}
	levels := 9 // log2(512)
	notes := []string{}
	for minLevel := 0; minLevel <= levels-1; minLevel++ {
		var expAcc, linAcc metrics.Accumulator
		tree, err := core.New(core.Options{WindowSize: n, MinLevel: minLevel})
		if err != nil {
			return nil, err
		}
		shadow, _ := stream.NewWindow(n)
		src := stream.Weather(7)
		qExp, err := query.New(query.Exponential, 0, n/2, 0)
		if err != nil {
			return nil, err
		}
		qLin, err := query.New(query.Linear, 0, n/2, 0)
		if err != nil {
			return nil, err
		}
		for i := 0; i < 2*n; i++ {
			v := src.Next()
			tree.Update(v)
			shadow.Push(v)
		}
		for i := 0; i < arrivals; i++ {
			v := src.Next()
			tree.Update(v)
			shadow.Push(v)
			for _, pair := range []struct {
				q   query.Query
				acc *metrics.Accumulator
			}{{qExp, &expAcc}, {qLin, &linAcc}} {
				approx, err := query.Approx(tree, pair.q)
				if err != nil {
					return nil, err
				}
				exact, err := query.Exact(shadow, pair.q)
				if err != nil {
					return nil, err
				}
				pair.acc.Add(metrics.Absolute(approx, exact))
			}
		}
		tab.AddRow(fmt.Sprintf("%d", levels-minLevel), fmt.Sprintf("%d", minLevel),
			f(expAcc.Mean()), f(linAcc.Mean()))
	}
	notes = append(notes,
		"paper: error grows much faster for the linear query than the exponential one as levels are dropped")
	return &Result{
		ID:          "fig4c",
		Description: "average absolute error under varying number of levels for different query types",
		Tables:      []*Table{tab},
		Notes:       notes,
	}, nil
}

// errMetric selects relative or absolute error.
type errMetric int

const (
	relMetric errMetric = iota
	absMetric
)

func (m errMetric) name() string {
	if m == absMetric {
		return "absolute"
	}
	return "relative"
}

func (m errMetric) eval(approx, exact float64) float64 {
	if m == absMetric {
		return metrics.Absolute(approx, exact)
	}
	return metrics.Relative(approx, exact)
}

// compareConfig drives one SWAT-vs-Histogram error comparison.
type compareConfig struct {
	n, buckets  int
	epsilon     float64
	data        string
	kind        query.Kind
	mode        query.Mode
	queryLen    int
	warm        int
	queryPoints int
	queryEvery  int
	seed        int64
}

// runCompare feeds the same stream to SWAT and the Histogram baseline
// and evaluates the same query sequence against both, returning the mean
// error of each under the given metric.
func runCompare(cfg compareConfig, m errMetric) (swat, hist float64, err error) {
	tree, err := core.New(core.Options{WindowSize: cfg.n})
	if err != nil {
		return 0, 0, err
	}
	h, err := histogram.New(histogram.Options{WindowSize: cfg.n, Buckets: cfg.buckets, Epsilon: cfg.epsilon})
	if err != nil {
		return 0, 0, err
	}
	shadow, err := stream.NewWindow(cfg.n)
	if err != nil {
		return 0, 0, err
	}
	src, err := dataSource(cfg.data, cfg.seed)
	if err != nil {
		return 0, 0, err
	}
	gen, err := query.NewGenerator(cfg.kind, cfg.mode, cfg.n, cfg.queryLen, 0, cfg.seed+1)
	if err != nil {
		return 0, 0, err
	}
	push := func() {
		v := src.Next()
		tree.Update(v)
		h.Update(v)
		shadow.Push(v)
	}
	for i := 0; i < cfg.warm; i++ {
		push()
	}
	var swatAcc, histAcc metrics.Accumulator
	for qp := 0; qp < cfg.queryPoints; qp++ {
		for i := 0; i < cfg.queryEvery; i++ {
			push()
		}
		q := gen.NextLent()
		exact, err := query.Exact(shadow, q)
		if err != nil {
			return 0, 0, err
		}
		sv, err := query.Approx(tree, q)
		if err != nil {
			return 0, 0, err
		}
		hv, err := query.Approx(h, q)
		if err != nil {
			return 0, 0, err
		}
		swatAcc.Add(m.eval(sv, exact))
		histAcc.Add(m.eval(hv, exact))
	}
	return swatAcc.Mean(), histAcc.Mean(), nil
}

// fig5Scale returns the comparison sizing for a scale. The paper uses
// N=1024 with a query every arrival; the histogram rebuild cost makes
// that a minutes-long run, so Quick uses N=256 and fewer query points
// (the SWAT-vs-Histogram quality ratio is insensitive to this, see
// EXPERIMENTS.md). Following the paper's fairness rule, the bucket count
// equals the number of approximations SWAT keeps: B = 3·log2(N) − 2
// ("the number of approximations that SWAT keeps is 3 log N ...
// therefore we set the bucket size B = 30").
func fig5Scale(scale Scale) (n, buckets, warm, queryPoints, queryEvery int) {
	if scale == Paper {
		return 1024, 30, 1024, 600, 1
	}
	return 256, 22, 512, 250, 2
}

func fig5Fixed(scale Scale, id, data string, epsilon float64, m errMetric) (*Result, error) {
	n, buckets, warm, points, every := fig5Scale(scale)
	tab := &Table{
		Title: fmt.Sprintf("Average %s error, fixed query mode (%s data, N=%d, B=%d, eps=%g, %d query points)",
			m.name(), data, n, buckets, epsilon, points),
		Columns: []string{"query type", "SWAT", "Histogram", "SWAT gain"},
	}
	notes := []string{}
	for _, kind := range []query.Kind{query.Exponential, query.Linear} {
		// Fixed-mode queries match the paper's example scale: short
		// queries over the most recent values (the §2.1 examples have
		// length 4). Long linear queries are sum-cancelling for any
		// mean-preserving summary and wash out the comparison; see the
		// query-length sensitivity note in EXPERIMENTS.md.
		cfg := compareConfig{
			n: n, buckets: buckets, epsilon: epsilon, data: data,
			kind: kind, mode: query.Fixed, queryLen: 8,
			warm: warm, queryPoints: points, queryEvery: every, seed: 21,
		}
		sv, hv, err := runCompare(cfg, m)
		if err != nil {
			return nil, err
		}
		gain := 0.0
		if sv > 0 {
			gain = hv / sv
		}
		tab.AddRow(kind.String(), f(sv), f(hv), fmt.Sprintf("%.1fx", gain))
		if kind == query.Exponential {
			notes = append(notes, fmt.Sprintf("exponential-query gain %.1fx (paper: up to 50x on real data, 25x on synthetic)", gain))
		}
	}
	return &Result{
		ID:          id,
		Description: fmt.Sprintf("SWAT vs Histogram %s error, fixed query mode, %s data", m.name(), data),
		Tables:      []*Table{tab},
		Notes:       notes,
	}, nil
}

func fig5Random(scale Scale, id, data string, kind query.Kind) (*Result, error) {
	n, buckets, warm, points, every := fig5Scale(scale)
	// The paper's "random query mode" chooses "the sizes of the queries
	// and the specific data points of interest ... uniformly"; both
	// readings are reproduced: random positions (mode=random) and random
	// sizes anchored at the most recent value (mode=random-recent).
	var tables []*Table
	var lastGain float64
	for _, mode := range []query.Mode{query.Random, query.RandomRecent} {
		tab := &Table{
			Title: fmt.Sprintf("Average relative error, %s mode, %s queries (%s data, N=%d, B=%d)",
				mode, kind, data, n, buckets),
			Columns: []string{"epsilon", "SWAT", "Histogram"},
		}
		for _, eps := range []float64{0.1, 0.01, 0.001} {
			cfg := compareConfig{
				n: n, buckets: buckets, epsilon: eps, data: data,
				kind: kind, mode: mode, queryLen: n / 2,
				warm: warm, queryPoints: points, queryEvery: every, seed: 31,
			}
			sv, hv, err := runCompare(cfg, relMetric)
			if err != nil {
				return nil, err
			}
			tab.AddRow(fmt.Sprintf("%g", eps), f(sv), f(hv))
			if mode == query.RandomRecent && sv > 0 {
				lastGain = hv / sv
			}
		}
		tables = append(tables, tab)
	}
	expectation := "paper: SWAT slightly worse than Histogram for random linear queries"
	if kind == query.Exponential {
		expectation = "paper: SWAT outperforms Histogram for random exponential queries (ratio 0.026/0.0119 ≈ 2.2)"
	}
	return &Result{
		ID:          id,
		Description: fmt.Sprintf("SWAT vs Histogram, random query mode, %s queries, %s data", kind, data),
		Tables:      tables,
		Notes: []string{
			fmt.Sprintf("Histogram/SWAT error ratio at smallest eps (recent-anchored): %.2f", lastGain),
			expectation,
		},
	}, nil
}

func fig5f(scale Scale) (*Result, error) {
	n, buckets, warm, points, every := fig5Scale(scale)
	tab := &Table{
		Title:   fmt.Sprintf("Average relative error, recent-anchored random mode (synthetic data, N=%d, B=%d, eps=0.001)", n, buckets),
		Columns: []string{"query type", "SWAT", "Histogram"},
	}
	for _, kind := range []query.Kind{query.Exponential, query.Linear} {
		cfg := compareConfig{
			n: n, buckets: buckets, epsilon: 0.001, data: "synthetic",
			kind: kind, mode: query.RandomRecent, queryLen: n / 2,
			warm: warm, queryPoints: points, queryEvery: every, seed: 41,
		}
		sv, hv, err := runCompare(cfg, relMetric)
		if err != nil {
			return nil, err
		}
		tab.AddRow(kind.String(), f(sv), f(hv))
	}
	return &Result{
		ID:          "fig5f",
		Description: "SWAT vs Histogram, random query mode, synthetic data, eps=0.001",
		Tables:      []*Table{tab},
		Notes: []string{
			"paper: ~2x better for exponential queries, comparable (slightly worse) for linear",
		},
	}, nil
}

func fig6a(scale Scale) (*Result, error) {
	sizes := []int{100_000, 1_000_000, 10_000_000}
	if scale == Quick {
		sizes = []int{10_000, 100_000, 1_000_000}
	}
	const n = 1024
	tab := &Table{
		Title:   "Summary maintenance time over the whole dataset (N=1024, no queries)",
		Columns: []string{"dataset size", "SWAT", "Histogram"},
	}
	for _, size := range sizes {
		tree, err := core.New(core.Options{WindowSize: n})
		if err != nil {
			return nil, err
		}
		src := stream.Uniform(int64(size))
		swatDur := timeOp(func() {
			for i := 0; i < size; i++ {
				tree.Update(src.Next())
			}
		})

		h, err := histogram.New(histogram.Options{WindowSize: n, Buckets: 30, Epsilon: 0.1})
		if err != nil {
			return nil, err
		}
		src = stream.Uniform(int64(size))
		histDur := timeOp(func() {
			for i := 0; i < size; i++ {
				h.Update(src.Next())
			}
		})
		tab.AddRow(fmt.Sprintf("%d", size), swatDur.String(), histDur.String())
	}
	return &Result{
		ID:          "fig6a",
		Description: "maintenance time comparison (incremental summary upkeep, no queries)",
		Tables:      []*Table{tab},
		Notes: []string{
			"paper: \"the maintenance times of the techniques are very similar\" — both are O(1) per arrival",
		},
	}, nil
}

func fig6b(scale Scale) (*Result, error) {
	n := 1024
	queries := 100 // paper: "execute 100 uniformly generated exponential inner product queries"
	histQueries := 100
	if scale == Quick {
		queries = 100
		histQueries = 10 // each Histogram query rebuilds at ~0.3 s
	}
	tree, err := core.New(core.Options{WindowSize: n})
	if err != nil {
		return nil, err
	}
	h, err := histogram.New(histogram.Options{WindowSize: n, Buckets: 30, Epsilon: 0.1})
	if err != nil {
		return nil, err
	}
	src := stream.Uniform(5)
	for i := 0; i < 2*n; i++ {
		v := src.Next()
		tree.Update(v)
		h.Update(v)
	}
	timeQueries := func(e query.Evaluator, count int) (time.Duration, error) {
		g, err := query.NewGenerator(query.Exponential, query.Random, n, n, 0, 51)
		if err != nil {
			return 0, err
		}
		var qerr error
		avg := timeOp(func() {
			for i := 0; i < count; i++ {
				if _, err := query.Approx(e, g.NextLent()); err != nil {
					qerr = err
					return
				}
			}
		}) / time.Duration(count)
		if qerr != nil {
			return 0, qerr
		}
		return avg, nil
	}
	swatAvg, err := timeQueries(tree, queries)
	if err != nil {
		return nil, err
	}
	histAvg, err := timeQueries(h, histQueries)
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Title:   fmt.Sprintf("Average query response time (N=%d, B=30, eps=0.1, exponential random queries)", n),
		Columns: []string{"technique", "avg response time", "queries timed"},
	}
	tab.AddRow("SWAT", swatAvg.String(), fmt.Sprintf("%d", queries))
	tab.AddRow("Histogram", histAvg.String(), fmt.Sprintf("%d", histQueries))
	speedup := float64(histAvg) / float64(swatAvg)
	return &Result{
		ID:          "fig6b",
		Description: "average query response time comparison",
		Tables:      []*Table{tab},
		Notes: []string{
			fmt.Sprintf("SWAT speedup %.0fx (paper: 2.8e-3 s vs 25.4 s, about four orders of magnitude)", speedup),
		},
	}, nil
}
