// Package experiments regenerates every table and figure of the paper's
// evaluation: the centralized error and running-time studies of §2.7
// (Figs. 4–6), the directory snapshot of Table 1, and the distributed
// replication studies of §5 (Figs. 9–10), plus ablations over SWAT's
// design choices. Each experiment is registered under the paper's
// figure ID and can be run from cmd/swatbench or the top-level
// benchmarks.
//
//swat:deterministic
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/streamsum/swat/internal/netsim"
	"github.com/streamsum/swat/internal/query"
	"github.com/streamsum/swat/internal/stream"
)

// Scale selects experiment sizing.
type Scale int

const (
	// Quick runs reduced workloads suitable for CI and -bench runs.
	Quick Scale = iota
	// Paper runs the full workloads of the paper (minutes for the
	// histogram-heavy figures).
	Paper
)

// String names the scale.
func (s Scale) String() string {
	if s == Paper {
		return "paper"
	}
	return "quick"
}

// Protocol is the uniform interface the distributed experiments drive;
// implemented by replication.System (SWAT-ASR), dc.System, and
// aps.System.
type Protocol interface {
	// Name identifies the protocol in output.
	Name() string
	// OnData delivers a new stream value to the source.
	OnData(v float64)
	// OnQuery executes a query arriving at a node.
	OnQuery(at netsim.NodeID, q query.Query) (float64, error)
	// OnPhaseEnd marks a phase boundary (no-op for phase-less protocols).
	OnPhaseEnd()
	// Messages exposes the protocol's message counter.
	Messages() *netsim.Counter
}

// timeAware is implemented by protocols whose rate estimation needs the
// simulation clock (Divergence Caching).
type timeAware interface {
	SetTime(t float64)
}

// Table is a printable result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
}

// Result is the output of one experiment run.
type Result struct {
	// ID is the registry key ("fig4a", ...).
	ID string
	// Description explains what the paper figure shows.
	Description string
	// Tables holds the regenerated rows/series.
	Tables []*Table
	// Notes summarize the measured outcome against the paper's claim.
	Notes []string
}

// Fprint renders the full result.
func (r *Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "=== %s — %s ===\n", r.ID, r.Description)
	for _, t := range r.Tables {
		fmt.Fprintln(w)
		t.Fprint(w)
	}
	if len(r.Notes) > 0 {
		fmt.Fprintln(w)
		for _, n := range r.Notes {
			fmt.Fprintf(w, "  note: %s\n", n)
		}
	}
}

// Runner produces a Result at the given scale.
type Runner func(scale Scale) (*Result, error)

// registry maps experiment IDs to runners; populated by init functions
// in the per-figure files.
var registry = map[string]Runner{}

// register adds an experiment to the registry; duplicate IDs panic at
// package initialization.
func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", id))
	}
	registry[id] = r
}

// IDs returns all registered experiment IDs in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, scale Scale) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return r(scale)
}

// dataSource builds the named dataset: "real" is the weather substitute,
// "synthetic" the uniform [0,100] stream of the paper.
func dataSource(name string, seed int64) (stream.Source, error) {
	switch name {
	case "real":
		return stream.Weather(seed), nil
	case "synthetic":
		return stream.Uniform(seed), nil
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
}

// f formats a float compactly for table cells.
func f(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v < 0.0001:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.5f", v)
	}
}
