package experiments

import (
	"fmt"

	"github.com/streamsum/swat/internal/query"
)

func init() {
	register("sensitivity-querylen", sensitivityQueryLen)
}

// sensitivityQueryLen sweeps the fixed-mode query length for the
// SWAT-vs-Histogram comparison. The paper never states the lengths used
// in Fig. 5; its worked examples are length 4. This sweep shows the
// comparison's strong dependence on that choice: short queries favour
// SWAT's fresh fine-grained recent nodes, while long linear queries
// favour any sum-preserving histogram because within-bucket errors
// cancel in large weighted sums.
func sensitivityQueryLen(scale Scale) (*Result, error) {
	n, buckets, warm, points, every := fig5Scale(scale)
	tab := &Table{
		Title: fmt.Sprintf("Histogram/SWAT relative-error ratio vs fixed query length (real data, N=%d, B=%d, eps=0.1)",
			n, buckets),
		Columns: []string{"query length", "exp: SWAT", "exp: Hist", "exp ratio", "lin: SWAT", "lin: Hist", "lin ratio"},
	}
	for _, qlen := range []int{4, 8, 16, 32, 64} {
		row := []string{fmt.Sprintf("%d", qlen)}
		for _, kind := range []query.Kind{query.Exponential, query.Linear} {
			cfg := compareConfig{
				n: n, buckets: buckets, epsilon: 0.1, data: "real",
				kind: kind, mode: query.Fixed, queryLen: qlen,
				warm: warm, queryPoints: points, queryEvery: every, seed: 21,
			}
			sv, hv, err := runCompare(cfg, relMetric)
			if err != nil {
				return nil, err
			}
			ratio := 0.0
			if sv > 0 {
				ratio = hv / sv
			}
			row = append(row, f(sv), f(hv), fmt.Sprintf("%.2f", ratio))
		}
		tab.AddRow(row...)
	}
	return &Result{
		ID:          "sensitivity-querylen",
		Description: "fixed-mode comparison sensitivity to query length",
		Tables:      []*Table{tab},
		Notes: []string{
			"short queries (the paper's example scale) favour SWAT on both kinds; the linear comparison flips for long queries",
			"see EXPERIMENTS.md for why: bucket-mean reconstruction preserves bucket sums, so long slowly-weighted sums cancel the histogram's pointwise error",
		},
	}, nil
}
