package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestIDsComplete(t *testing.T) {
	want := []string{
		"fig4a", "fig4b", "fig4c",
		"fig5a", "fig5b", "fig5c", "fig5d", "fig5e", "fig5f",
		"fig6a", "fig6b",
		"fig9a", "fig9b", "fig9c",
		"fig10a", "fig10b",
		"tab1",
		"ablation-basis", "ablation-bucketing", "ablation-coeffs", "ablation-levels", "ablation-phase",
		"sensitivity-querylen",
		"lossy",
	}
	got := IDs()
	index := make(map[string]bool, len(got))
	for _, id := range got {
		index[id] = true
	}
	for _, id := range want {
		if !index[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(got) != len(want) {
		t.Errorf("registered %d experiments, want %d: %v", len(got), len(want), got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("IDs not sorted at %d: %v", i, got)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", Quick); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestScaleString(t *testing.T) {
	if Quick.String() != "quick" || Paper.String() != "paper" {
		t.Error("scale names wrong")
	}
}

func TestDataSource(t *testing.T) {
	for _, name := range []string{"real", "synthetic"} {
		src, err := dataSource(name, 1)
		if err != nil || src == nil {
			t.Errorf("dataSource(%q) failed: %v", name, err)
		}
	}
	if _, err := dataSource("bogus", 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestTableFprint(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "long-column"},
	}
	tab.AddRow("1", "x")
	tab.AddRow("22", "y")
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "long-column") {
		t.Errorf("table output missing parts:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestResultFprint(t *testing.T) {
	r := &Result{ID: "x", Description: "d", Notes: []string{"n1"}}
	var sb strings.Builder
	r.Fprint(&sb)
	if !strings.Contains(sb.String(), "=== x — d ===") || !strings.Contains(sb.String(), "note: n1") {
		t.Errorf("result output:\n%s", sb.String())
	}
}

func TestFormatFloat(t *testing.T) {
	if f(0) != "0" {
		t.Error("f(0)")
	}
	if !strings.Contains(f(12345), "e") {
		t.Error("large values should use scientific notation")
	}
	if f(0.5) != "0.50000" {
		t.Errorf("f(0.5) = %q", f(0.5))
	}
}

// checkResult validates the basic shape of any experiment output.
func checkResult(t *testing.T, id string, r *Result) {
	t.Helper()
	if r.ID != id {
		t.Errorf("result ID %q, want %q", r.ID, id)
	}
	if len(r.Tables) == 0 {
		t.Fatalf("%s: no tables", id)
	}
	for _, tab := range r.Tables {
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table %q", id, tab.Title)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Errorf("%s: row width %d != %d columns", id, len(row), len(tab.Columns))
			}
		}
	}
}

// TestRunAllQuick executes every registered experiment at Quick scale.
// The histogram-backed figures are the slow ones and are skipped with
// -short.
func TestRunAllQuick(t *testing.T) {
	slow := map[string]bool{
		"fig5a": true, "fig5b": true, "fig5c": true,
		"fig5d": true, "fig5e": true, "fig5f": true,
		"fig6b": true, "sensitivity-querylen": true,
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && slow[id] {
				t.Skip("histogram-backed experiment skipped in -short mode")
			}
			r, err := Run(id, Quick)
			if err != nil {
				t.Fatal(err)
			}
			checkResult(t, id, r)
		})
	}
}

// lastCell parses the numeric cell at (row, col) of a table.
func lastCell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(tab.Rows[row][col], "x"), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

// TestFig9aShape asserts the qualitative result the paper reports:
// SWAT-ASR never sends more messages than APS, and the competitors'
// costs fall as the write rate drops (caching becomes viable).
func TestFig9aShape(t *testing.T) {
	r, err := Run("fig9a", Quick)
	if err != nil {
		t.Fatal(err)
	}
	tab := r.Tables[0]
	for i := range tab.Rows {
		asr := lastCell(t, tab, i, 1)
		apsCost := lastCell(t, tab, i, 3)
		if asr > apsCost {
			t.Errorf("row %d: ASR %v > APS %v", i, asr, apsCost)
		}
	}
	dcFirst := lastCell(t, tab, 0, 2)
	dcLast := lastCell(t, tab, len(tab.Rows)-1, 2)
	if dcLast >= dcFirst {
		t.Errorf("DC cost did not fall from write-heavy (%v) to read-heavy (%v)", dcFirst, dcLast)
	}
}

// TestFig4cShape: dropping levels must increase the linear-query error
// monotonically in the aggregate (first vs last row), and the linear
// error must grow by a larger factor than the exponential error.
func TestFig4cShape(t *testing.T) {
	r, err := Run("fig4c", Quick)
	if err != nil {
		t.Fatal(err)
	}
	tab := r.Tables[0]
	first, last := 0, len(tab.Rows)-1
	expRise := lastCell(t, tab, last, 2) - lastCell(t, tab, first, 2)
	linRise := lastCell(t, tab, last, 3) - lastCell(t, tab, first, 3)
	if expRise <= 0 {
		t.Errorf("exponential-query error did not grow: rise %v", expRise)
	}
	if linRise <= expRise {
		t.Errorf("linear error rise %v not larger than exponential rise %v (paper: linear degrades much faster)", linRise, expRise)
	}
}

// TestTab1Shape: the directory has log2(16)=4 rows and the first
// segment is (0,1).
func TestTab1Shape(t *testing.T) {
	r, err := Run("tab1", Quick)
	if err != nil {
		t.Fatal(err)
	}
	tab := r.Tables[0]
	if len(tab.Rows) != 4 {
		t.Fatalf("directory rows = %d, want 4", len(tab.Rows))
	}
	if tab.Rows[0][0] != "(0,1)" || tab.Rows[3][0] != "(8,15)" {
		t.Errorf("segments = %v ... %v", tab.Rows[0][0], tab.Rows[3][0])
	}
}

// TestFig9cShape: SWAT-ASR is never costlier than either competitor at
// any precision, and its cost falls monotonically as δ loosens.
func TestFig9cShape(t *testing.T) {
	r, err := Run("fig9c", Quick)
	if err != nil {
		t.Fatal(err)
	}
	tab := r.Tables[0]
	prev := -1.0
	for i := range tab.Rows {
		asr := lastCell(t, tab, i, 1)
		dcCost := lastCell(t, tab, i, 2)
		apsCost := lastCell(t, tab, i, 3)
		if asr > dcCost || asr > apsCost {
			t.Errorf("δ=%s: ASR %v not cheapest (DC %v, APS %v)", tab.Rows[i][0], asr, dcCost, apsCost)
		}
		if prev >= 0 && asr > prev {
			t.Errorf("δ=%s: ASR cost rose from %v to %v as precision loosened", tab.Rows[i][0], prev, asr)
		}
		prev = asr
	}
}

// TestFig10aShape: message cost grows with the client count for every
// protocol, and SWAT-ASR stays cheapest throughout.
func TestFig10aShape(t *testing.T) {
	r, err := Run("fig10a", Quick)
	if err != nil {
		t.Fatal(err)
	}
	tab := r.Tables[0]
	for col := 1; col <= 3; col++ {
		prev := -1.0
		for i := range tab.Rows {
			v := lastCell(t, tab, i, col)
			if v <= prev {
				t.Errorf("column %d: cost did not grow with clients (%v -> %v)", col, prev, v)
			}
			prev = v
		}
	}
	for i := range tab.Rows {
		asr := lastCell(t, tab, i, 1)
		if asr > lastCell(t, tab, i, 2) || asr > lastCell(t, tab, i, 3) {
			t.Errorf("row %d: ASR not cheapest", i)
		}
	}
}
