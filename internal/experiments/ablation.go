package experiments

import (
	"fmt"

	"github.com/streamsum/swat/internal/core"
	"github.com/streamsum/swat/internal/metrics"
	"github.com/streamsum/swat/internal/netsim"
	"github.com/streamsum/swat/internal/query"
	"github.com/streamsum/swat/internal/replication"
	"github.com/streamsum/swat/internal/stream"
	"github.com/streamsum/swat/internal/wavelet"
)

// This file holds ablation studies over SWAT's design choices called out
// in DESIGN.md §4: per-node coefficient budget, level reduction
// (space/error trade-off), wavelet basis compression quality, and the
// replication phase length.

func init() {
	register("ablation-coeffs", ablationCoeffs)
	register("ablation-levels", ablationLevels)
	register("ablation-basis", ablationBasis)
	register("ablation-phase", ablationPhase)
}

// ablationCoeffs sweeps k, the per-node coefficient budget: more
// coefficients mean lower error and proportionally more space and update
// work.
func ablationCoeffs(scale Scale) (*Result, error) {
	const n = 256
	arrivals := 4096
	if scale == Quick {
		arrivals = 1024
	}
	tab := &Table{
		Title:   fmt.Sprintf("Coefficient budget k vs error and update cost (N=%d, weather data)", n),
		Columns: []string{"k", "exp rel err", "linear rel err", "node updates / arrival", "space (coeffs)"},
	}
	for _, k := range []int{1, 2, 4, 8} {
		tree, err := core.New(core.Options{WindowSize: n, Coefficients: k})
		if err != nil {
			return nil, err
		}
		shadow, _ := stream.NewWindow(n)
		src := stream.Weather(11)
		qExp, _ := query.New(query.Exponential, 0, n/4, 0)
		qLin, _ := query.New(query.Linear, 0, n/4, 0)
		for i := 0; i < 2*n; i++ {
			v := src.Next()
			tree.Update(v)
			shadow.Push(v)
		}
		base := tree.NodeUpdates()
		var expAcc, linAcc metrics.Accumulator
		for i := 0; i < arrivals; i++ {
			v := src.Next()
			tree.Update(v)
			shadow.Push(v)
			for _, pair := range []struct {
				q   query.Query
				acc *metrics.Accumulator
			}{{qExp, &expAcc}, {qLin, &linAcc}} {
				approx, err := query.Approx(tree, pair.q)
				if err != nil {
					return nil, err
				}
				exact, err := query.Exact(shadow, pair.q)
				if err != nil {
					return nil, err
				}
				pair.acc.Add(metrics.Relative(approx, exact))
			}
		}
		updatesPerArrival := float64(tree.NodeUpdates()-base) / float64(arrivals)
		space := 0
		for _, ni := range tree.Nodes() {
			space += len(ni.Coeffs)
		}
		tab.AddRow(fmt.Sprintf("%d", k), f(expAcc.Mean()), f(linAcc.Mean()),
			fmt.Sprintf("%.2f", updatesPerArrival), fmt.Sprintf("%d", space))
	}
	return &Result{
		ID:          "ablation-coeffs",
		Description: "per-node coefficient budget: error vs space/update cost",
		Tables:      []*Table{tab},
		Notes: []string{
			"expected: error falls with k while space grows ~k; update count per arrival is k-independent (each touches O(k) coefficients)",
		},
	}, nil
}

// ablationLevels quantifies the §2.5 space-error trade-off explicitly:
// nodes kept vs error.
func ablationLevels(scale Scale) (*Result, error) {
	const n = 256
	arrivals := 4096
	if scale == Quick {
		arrivals = 1024
	}
	tab := &Table{
		Title:   fmt.Sprintf("Level reduction: space vs point-query error (N=%d, weather data)", n),
		Columns: []string{"min level", "nodes kept", "mean abs err (age 0)", "mean abs err (age N/2)"},
	}
	for minLevel := 0; minLevel <= 7; minLevel++ {
		tree, err := core.New(core.Options{WindowSize: n, MinLevel: minLevel})
		if err != nil {
			return nil, err
		}
		shadow, _ := stream.NewWindow(n)
		src := stream.Weather(13)
		for i := 0; i < 2*n; i++ {
			v := src.Next()
			tree.Update(v)
			shadow.Push(v)
		}
		var newest, middle metrics.Accumulator
		for i := 0; i < arrivals; i++ {
			v := src.Next()
			tree.Update(v)
			shadow.Push(v)
			v0, err := tree.PointQuery(0)
			if err != nil {
				return nil, err
			}
			newest.Add(metrics.Absolute(v0, shadow.MustAt(0)))
			vm, err := tree.PointQuery(n / 2)
			if err != nil {
				return nil, err
			}
			middle.Add(metrics.Absolute(vm, shadow.MustAt(n/2)))
		}
		tab.AddRow(fmt.Sprintf("%d", minLevel), fmt.Sprintf("%d", tree.NumNodes()),
			f(newest.Mean()), f(middle.Mean()))
	}
	return &Result{
		ID:          "ablation-levels",
		Description: "space-error trade-off of maintaining only the top levels (paper §2.5)",
		Tables:      []*Table{tab},
		Notes: []string{
			"recent-age error degrades fastest: dropping fine levels removes exactly the high-resolution recent approximations",
		},
	}, nil
}

// ablationBasis compares largest-B compression quality of the Haar and
// DB4 bases on the experiment datasets, justifying the default basis.
func ablationBasis(scale Scale) (*Result, error) {
	n := 1024
	if scale == Quick {
		n = 512
	}
	tab := &Table{
		Title:   fmt.Sprintf("Largest-B synopsis RMS error by basis (signal length %d)", n),
		Columns: []string{"dataset", "B", "Haar", "DB4"},
	}
	for _, data := range []string{"real", "synthetic"} {
		src, err := dataSource(data, 19)
		if err != nil {
			return nil, err
		}
		signal := make([]float64, n)
		for i := range signal {
			signal[i] = src.Next()
		}
		for _, b := range []int{8, 32, 128} {
			row := []string{data, fmt.Sprintf("%d", b)}
			for _, basis := range []*wavelet.Basis{wavelet.Haar, wavelet.DB4} {
				syn, err := wavelet.NewSynopsis(basis, signal, b)
				if err != nil {
					return nil, err
				}
				rms, err := syn.L2Error(basis, signal)
				if err != nil {
					return nil, err
				}
				row = append(row, f(rms))
			}
			tab.AddRow(row...)
		}
	}
	return &Result{
		ID:          "ablation-basis",
		Description: "wavelet basis choice: Haar vs Daubechies-4 compression quality",
		Tables:      []*Table{tab},
		Notes: []string{
			"DB4 helps on smooth (real) data, Haar is competitive on uncorrelated synthetic data and admits O(1) combine steps — the reason SWAT defaults to Haar",
		},
	}, nil
}

// ablationPhase sweeps the SWAT-ASR phase length: short phases react
// faster but spend more on expansion/contraction churn.
func ablationPhase(scale Scale) (*Result, error) {
	duration := 1500.0
	if scale == Quick {
		duration = 400
	}
	tab := &Table{
		Title:   fmt.Sprintf("SWAT-ASR phase length sensitivity (N=32, single client, real data, duration %g)", duration),
		Columns: []string{"phase length", "messages"},
	}
	for _, phase := range []float64{5, 10, 25, 50, 100} {
		top, err := netsim.Chain(2)
		if err != nil {
			return nil, err
		}
		cfg := distConfig{
			topology: top, window: 32, data: "real", seed: 29,
			dataPeriod: 2, queryPeriod: 1, phaseLength: phase,
			duration: duration, precision: 20, queryLen: 8,
		}
		asr, err := replication.New(top, cfg.window)
		if err != nil {
			return nil, err
		}
		msgs, err := runDistributed(asr, cfg)
		if err != nil {
			return nil, err
		}
		tab.AddRow(fmt.Sprintf("%g", phase), fmt.Sprintf("%d", msgs))
	}
	return &Result{
		ID:          "ablation-phase",
		Description: "replication phase length: adaptation speed vs churn",
		Tables:      []*Table{tab},
		Notes: []string{
			"the protocol is robust across a wide range of phase lengths; extremes pay either churn (short) or slow adaptation (long)",
		},
	}, nil
}
