package stream

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniformRangeAndDeterminism(t *testing.T) {
	a := Uniform(42)
	b := Uniform(42)
	for i := 0; i < 1000; i++ {
		va, vb := a.Next(), b.Next()
		if va != vb {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, va, vb)
		}
		if va < 0 || va > 100 {
			t.Fatalf("uniform value %v out of [0,100]", va)
		}
	}
}

func TestUniformRangeBounds(t *testing.T) {
	s := UniformRange(1, -5, 5)
	for i := 0; i < 1000; i++ {
		v := s.Next()
		if v < -5 || v > 5 {
			t.Fatalf("value %v out of [-5,5]", v)
		}
	}
}

func TestRandomWalkBounded(t *testing.T) {
	s := RandomWalk(3, 50, 10, 0, 100)
	prev := 50.0
	for i := 0; i < 5000; i++ {
		v := s.Next()
		if v < 0 || v > 100 {
			t.Fatalf("walk escaped bounds: %v", v)
		}
		if math.Abs(v-prev) > 30 {
			t.Fatalf("walk step too large: %v -> %v", prev, v)
		}
		prev = v
	}
}

func TestDrift(t *testing.T) {
	s := Drift(10, 0.5)
	for i := 0; i < 10; i++ {
		want := 10 + 0.5*float64(i)
		if got := s.Next(); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Drift value %d = %v, want %v", i, got, want)
		}
	}
}

func TestConstant(t *testing.T) {
	s := Constant(7)
	for i := 0; i < 5; i++ {
		if s.Next() != 7 {
			t.Fatal("Constant not constant")
		}
	}
}

func TestWeatherShape(t *testing.T) {
	w := Weather(1)
	if w.Len() != 2922 {
		t.Fatalf("Len = %d, want 2922 (8 years of daily data)", w.Len())
	}
	var sumAbsDiff, sum float64
	lo, hi := math.Inf(1), math.Inf(-1)
	prev := w.Next()
	for i := 1; i < w.Len(); i++ {
		v := w.Next()
		sumAbsDiff += math.Abs(v - prev)
		sum += v
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
		prev = v
	}
	if lo < 6 || hi > 44 {
		t.Errorf("temperature range [%v,%v] outside clamp [6,44]", lo, hi)
	}
	meanStep := sumAbsDiff / float64(w.Len()-1)
	if meanStep > 4 {
		t.Errorf("weather data too jumpy: mean |step| = %v, want smooth (< 4)", meanStep)
	}
	mean := sum / float64(w.Len()-1)
	if mean < 12 || mean > 32 {
		t.Errorf("mean temperature %v implausible", mean)
	}
}

func TestWeatherSeasonality(t *testing.T) {
	w := Weather(1)
	// Average of (relative) summer days must exceed average of winter
	// days by a clear margin across the eight years.
	var summer, winter float64
	var ns, nw int
	for year := 0; year < 8; year++ {
		base := year * 365
		for d := 160; d < 220; d++ { // around the seasonal peak
			summer += w.At(base + d)
			ns++
		}
		for d := 320; d < 360; d++ { // seasonal trough
			winter += w.At(base + d)
			nw++
		}
	}
	if summer/float64(ns) < winter/float64(nw)+5 {
		t.Errorf("no seasonality: summer mean %v vs winter mean %v", summer/float64(ns), winter/float64(nw))
	}
}

func TestWeatherLoopAndReset(t *testing.T) {
	w := Weather(5)
	first := make([]float64, 10)
	for i := range first {
		first[i] = w.Next()
	}
	w.Reset()
	for i := range first {
		if got := w.Next(); got != first[i] {
			t.Fatalf("Reset mismatch at %d", i)
		}
	}
	// Exhaust a full cycle; the next value must equal sample 10 again.
	w.Reset()
	for i := 0; i < w.Len(); i++ {
		w.Next()
	}
	if got, want := w.Next(), w.At(0); got != want {
		t.Fatalf("loop mismatch: %v vs %v", got, want)
	}
}

func TestNewWindowValidation(t *testing.T) {
	if _, err := NewWindow(0); err == nil {
		t.Error("accepted size 0")
	}
	if _, err := NewWindow(-3); err == nil {
		t.Error("accepted negative size")
	}
}

func TestWindowBasics(t *testing.T) {
	w, err := NewWindow(4)
	if err != nil {
		t.Fatal(err)
	}
	if w.Cap() != 4 || w.Len() != 0 || w.Total() != 0 {
		t.Fatal("fresh window state wrong")
	}
	for i := 1; i <= 6; i++ {
		w.Push(float64(i))
	}
	if w.Len() != 4 || w.Total() != 6 {
		t.Fatalf("Len=%d Total=%d, want 4, 6", w.Len(), w.Total())
	}
	// Newest first: 6,5,4,3.
	want := []float64{6, 5, 4, 3}
	got := w.Values()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v, want %v", got, want)
		}
	}
	if v := w.MustAt(0); v != 6 {
		t.Errorf("MustAt(0) = %v, want 6", v)
	}
	if _, err := w.At(4); err == nil {
		t.Error("At(4) accepted out-of-range age")
	}
	if _, err := w.At(-1); err == nil {
		t.Error("At(-1) accepted negative age")
	}
}

func TestWindowSliceMeanMinMax(t *testing.T) {
	w, _ := NewWindow(8)
	for i := 1; i <= 8; i++ {
		w.Push(float64(i))
	}
	s, err := w.Slice(2, 5) // ages 2..5 = values 6,5,4,3
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{6, 5, 4, 3}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", s, want)
		}
	}
	m, err := w.Mean(2, 5)
	if err != nil || m != 4.5 {
		t.Fatalf("Mean = %v (%v), want 4.5", m, err)
	}
	lo, hi, err := w.MinMax(2, 5)
	if err != nil || lo != 3 || hi != 6 {
		t.Fatalf("MinMax = %v,%v (%v), want 3,6", lo, hi, err)
	}
	if _, err := w.Slice(5, 2); err == nil {
		t.Error("Slice accepted inverted range")
	}
	if _, err := w.Mean(0, 8); err == nil {
		t.Error("Mean accepted out-of-range")
	}
	if _, _, err := w.MinMax(-1, 2); err == nil {
		t.Error("MinMax accepted negative from")
	}
}

func TestWindowMustAtPanics(t *testing.T) {
	w, _ := NewWindow(2)
	defer func() {
		if recover() == nil {
			t.Fatal("MustAt did not panic on empty window")
		}
	}()
	w.MustAt(0)
}

// Property: after pushing any sequence, At(age) returns the value pushed
// (len-1-age) positions ago within the window.
func TestQuickWindowSemantics(t *testing.T) {
	f := func(vals []float64, capRaw uint8) bool {
		capN := int(capRaw%16) + 1
		w, err := NewWindow(capN)
		if err != nil {
			return false
		}
		for _, v := range vals {
			w.Push(v)
		}
		n := len(vals)
		if w.Len() != min(n, capN) {
			return false
		}
		for age := 0; age < w.Len(); age++ {
			if w.MustAt(age) != vals[n-1-age] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
