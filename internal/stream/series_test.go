package stream

import (
	"strings"
	"testing"
)

func TestReadCSVBasic(t *testing.T) {
	in := "day,temp\n1,20.5\n2,21.0\n3,19.25\n"
	vals, err := ReadCSV(strings.NewReader(in), 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{20.5, 21.0, 19.25}
	if len(vals) != len(want) {
		t.Fatalf("vals = %v", vals)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	vals, err := ReadCSV(strings.NewReader("1.5\n2.5\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != 1.5 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestReadCSVWhitespace(t *testing.T) {
	vals, err := ReadCSV(strings.NewReader("a, 7 \nb, 8\n"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != 7 || vals[1] != 8 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("1\n"), -1); err == nil {
		t.Error("negative column accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1\n"), 3); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := ReadCSV(strings.NewReader("header\n"), 0); err == nil {
		t.Error("header-only input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1\nbad\n2\n"), 0); err == nil {
		t.Error("mid-file non-numeric cell accepted")
	}
	if _, err := ReadCSV(strings.NewReader(""), 0); err == nil {
		t.Error("empty input accepted")
	}
}

func TestReplayerLooping(t *testing.T) {
	r, err := NewReplayer([]float64{1, 2, 3}, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d", r.Len())
	}
	got := make([]float64, 7)
	for i := range got {
		got[i] = r.Next()
	}
	want := []float64{1, 2, 3, 1, 2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("looped = %v, want %v", got, want)
		}
	}
	if r.Done() {
		t.Error("looping replayer reported Done")
	}
}

func TestReplayerNonLooping(t *testing.T) {
	r, err := NewReplayer([]float64{5, 6}, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.Done() {
		t.Error("Done before reading")
	}
	if r.Next() != 5 || r.Done() {
		t.Error("first value wrong or premature Done")
	}
	if r.Next() != 6 {
		t.Error("second value wrong")
	}
	if !r.Done() {
		t.Error("not Done after exhaustion")
	}
	// Exhausted: keeps returning the last value.
	if r.Next() != 6 || r.Next() != 6 {
		t.Error("exhausted replayer changed value")
	}
	r.Reset()
	if r.Done() || r.Next() != 5 {
		t.Error("Reset did not rewind")
	}
}

func TestReplayerValidation(t *testing.T) {
	if _, err := NewReplayer(nil, true); err == nil {
		t.Error("empty series accepted")
	}
}

func TestReplayerCopiesInput(t *testing.T) {
	vals := []float64{1, 2}
	r, _ := NewReplayer(vals, true)
	vals[0] = 99
	if r.Next() != 1 {
		t.Error("replayer aliases caller slice")
	}
}
