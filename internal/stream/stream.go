// Package stream provides the data sources and sliding-window buffer used
// by the SWAT experiments: the paper's synthetic uniform data, a
// deterministic substitute for its real weather dataset (Santa Barbara
// daily maximum temperatures 1994–2001; see DESIGN.md §2.4 for the
// substitution rationale), random-walk and constant-drift sources used by
// tests, and a ring-buffer sliding window that retains the last N values.
//
//swat:deterministic
package stream

import (
	"fmt"
	"math"
	"math/rand"
)

// Source produces an unbounded sequence of stream values.
type Source interface {
	// Next returns the next value of the stream.
	Next() float64
}

// Func adapts a function to the Source interface.
type Func func() float64

// Next implements Source.
func (f Func) Next() float64 { return f() }

// Uniform returns the paper's synthetic source: i.i.d. uniform values in
// [0, 100], seeded deterministically.
func Uniform(seed int64) Source {
	r := rand.New(rand.NewSource(seed))
	return Func(func() float64 { return r.Float64() * 100 })
}

// UniformRange returns i.i.d. uniform values in [lo, hi].
func UniformRange(seed int64, lo, hi float64) Source {
	r := rand.New(rand.NewSource(seed))
	return Func(func() float64 { return lo + r.Float64()*(hi-lo) })
}

// RandomWalk returns a bounded random walk starting at start with steps
// uniform in [-step, step], reflected at [lo, hi]. Random walks have the
// strong local correlation of real sensor data and are used in tests and
// examples.
func RandomWalk(seed int64, start, step, lo, hi float64) Source {
	r := rand.New(rand.NewSource(seed))
	v := start
	return Func(func() float64 {
		v += (r.Float64()*2 - 1) * step
		switch {
		case v < lo:
			v = 2*lo - v
		case v > hi:
			v = 2*hi - v
		}
		return v
	})
}

// Drift returns the deterministic source of the paper's error-bound
// analysis (§2.6): consecutive values differ by exactly epsilon,
// d_{i+1} - d_i = epsilon, starting from start.
func Drift(start, epsilon float64) Source {
	v := start - epsilon
	return Func(func() float64 {
		v += epsilon
		return v
	})
}

// Constant returns a source that always produces v.
func Constant(v float64) Source {
	return Func(func() float64 { return v })
}

// weatherLen matches the paper's real dataset size: daily maxima for
// 1994–2001, eight years, "its size is 3K".
const weatherLen = 2922

// Weather returns the substitute for the paper's real dataset: a
// deterministic seasonal temperature series (degrees Celsius) with a
// yearly sinusoid, slowly-varying AR(1) weather systems, mild daily
// noise, and occasional multi-day heat spikes. Consecutive values differ
// by little — the property (small deviations vs. the jumpy uniform
// synthetic data) that drives every real-vs-synthetic contrast in the
// paper. The series repeats after Len() samples, mirroring experiments
// that loop over the finite real dataset.
func Weather(seed int64) *WeatherSource {
	w := &WeatherSource{data: make([]float64, weatherLen)}
	r := rand.New(rand.NewSource(seed))
	ar := 0.0
	spike := 0.0
	for i := range w.data {
		day := float64(i)
		seasonal := 22 + 7*math.Sin(2*math.Pi*(day-100)/365.25)
		// AR(1) weather system with a multi-day time constant.
		ar = 0.88*ar + r.NormFloat64()*1.5
		// Rare heat waves that decay over about a week.
		if spike > 0.05 {
			spike *= 0.75
		} else {
			spike = 0
			if r.Float64() < 0.015 {
				spike = 5 + r.Float64()*7
			}
		}
		// Day-to-day noise: coastal daily maxima swing by several
		// degrees with marine-layer burn-off.
		v := seasonal + ar + spike + r.NormFloat64()*1.7
		w.data[i] = math.Min(44, math.Max(6, v))
	}
	return w
}

// WeatherSource is the finite, repeating weather dataset.
type WeatherSource struct {
	data []float64
	pos  int
}

// Len returns the number of distinct samples before the series repeats.
func (w *WeatherSource) Len() int { return len(w.data) }

// At returns the i-th sample of the dataset (0-based, not affected by
// Next's cursor).
func (w *WeatherSource) At(i int) float64 { return w.data[i%len(w.data)] }

// Next implements Source, looping over the dataset.
func (w *WeatherSource) Next() float64 {
	v := w.data[w.pos]
	w.pos = (w.pos + 1) % len(w.data)
	return v
}

// Reset rewinds the cursor to the beginning of the dataset.
func (w *WeatherSource) Reset() { w.pos = 0 }

// Window is a fixed-capacity sliding window over the most recent values
// of a stream, stored in a ring buffer. Index 0 is the most recent value
// ("age" indexing, matching the paper's d_0, d_1, ... convention).
type Window struct {
	buf   []float64
	head  int // position of the most recent value
	count int // number of values seen, saturating at len(buf)
	total uint64
}

// NewWindow creates a sliding window holding the last n values. n must be
// positive.
func NewWindow(n int) (*Window, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stream: window size must be positive, got %d", n)
	}
	return &Window{buf: make([]float64, n), head: -1}, nil
}

// Push appends a new most-recent value, evicting the oldest if full.
func (w *Window) Push(v float64) {
	w.head = (w.head + 1) % len(w.buf)
	w.buf[w.head] = v
	if w.count < len(w.buf) {
		w.count++
	}
	w.total++
}

// Cap returns the window capacity N.
func (w *Window) Cap() int { return len(w.buf) }

// Len returns the number of values currently held (≤ Cap).
func (w *Window) Len() int { return w.count }

// Total returns the total number of values pushed since creation.
func (w *Window) Total() uint64 { return w.total }

// At returns the value with the given age: At(0) is the most recent
// value, At(1) the one before it, and so on. It returns an error if age
// is out of range.
func (w *Window) At(age int) (float64, error) {
	if age < 0 || age >= w.count {
		return 0, fmt.Errorf("stream: age %d out of range [0,%d)", age, w.count)
	}
	idx := (w.head - age + len(w.buf)*2) % len(w.buf)
	return w.buf[idx], nil
}

// MustAt is At for ages known to be valid; it panics on range errors and
// exists for hot paths already guarded by Len checks.
func (w *Window) MustAt(age int) float64 {
	v, err := w.At(age)
	if err != nil {
		panic(err)
	}
	return v
}

// Slice returns the values with ages [from, to] inclusive, newest first.
func (w *Window) Slice(from, to int) ([]float64, error) {
	if from < 0 || to < from || to >= w.count {
		return nil, fmt.Errorf("stream: slice [%d,%d] out of range [0,%d)", from, to, w.count)
	}
	out := make([]float64, 0, to-from+1)
	for age := from; age <= to; age++ {
		out = append(out, w.MustAt(age))
	}
	return out, nil
}

// Values returns all held values, newest first.
func (w *Window) Values() []float64 {
	out := make([]float64, w.count)
	for age := 0; age < w.count; age++ {
		out[age] = w.MustAt(age)
	}
	return out
}

// MinMax returns the minimum and maximum over ages [from, to] inclusive.
func (w *Window) MinMax(from, to int) (lo, hi float64, err error) {
	if from < 0 || to < from || to >= w.count {
		return 0, 0, fmt.Errorf("stream: minmax [%d,%d] out of range [0,%d)", from, to, w.count)
	}
	lo = math.Inf(1)
	hi = math.Inf(-1)
	for age := from; age <= to; age++ {
		v := w.MustAt(age)
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi, nil
}

// Mean returns the mean over ages [from, to] inclusive.
func (w *Window) Mean(from, to int) (float64, error) {
	if from < 0 || to < from || to >= w.count {
		return 0, fmt.Errorf("stream: mean [%d,%d] out of range [0,%d)", from, to, w.count)
	}
	var s float64
	for age := from; age <= to; age++ {
		s += w.MustAt(age)
	}
	return s / float64(to-from+1), nil
}
