package stream

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file supports replaying recorded datasets: parsing numeric series
// from CSV (for users substituting their own data for the built-in
// generators, e.g. an actual weather or call-detail-record export) and a
// replay Source over an in-memory series.

// ReadCSV parses a numeric series from CSV data, taking the value of the
// given 0-based column of every record. A single leading header row
// whose cell is not numeric is skipped; any later non-numeric cell is an
// error.
func ReadCSV(r io.Reader, column int) ([]float64, error) {
	if column < 0 {
		return nil, fmt.Errorf("stream: negative column %d", column)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // allow ragged rows; validate per record
	var out []float64
	row := 0
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("stream: csv row %d: %w", row+1, err)
		}
		row++
		if column >= len(rec) {
			return nil, fmt.Errorf("stream: csv row %d has %d columns, need %d", row, len(rec), column+1)
		}
		cell := strings.TrimSpace(rec[column])
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			if row == 1 {
				continue // header row
			}
			return nil, fmt.Errorf("stream: csv row %d: %q is not numeric", row, cell)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("stream: no numeric values in csv input")
	}
	return out, nil
}

// Replayer replays a finite recorded series as a Source, optionally
// looping when exhausted.
type Replayer struct {
	data []float64
	pos  int
	loop bool
	done bool
}

// NewReplayer wraps a non-empty series. With loop=false, Next keeps
// returning the final value once the series is exhausted and Done
// reports exhaustion.
func NewReplayer(values []float64, loop bool) (*Replayer, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("stream: empty series")
	}
	return &Replayer{data: append([]float64(nil), values...), loop: loop}, nil
}

// Len returns the length of the recorded series.
func (r *Replayer) Len() int { return len(r.data) }

// Done reports whether a non-looping replay has been exhausted.
func (r *Replayer) Done() bool { return r.done }

// Reset rewinds the replay.
func (r *Replayer) Reset() {
	r.pos = 0
	r.done = false
}

// Next implements Source.
func (r *Replayer) Next() float64 {
	if r.pos >= len(r.data) {
		if r.loop {
			r.pos = 0
		} else {
			r.done = true
			return r.data[len(r.data)-1]
		}
	}
	v := r.data[r.pos]
	r.pos++
	if r.pos >= len(r.data) && !r.loop {
		r.done = true
	}
	return v
}
