#!/usr/bin/env bash
# Benchmark cluster ingest and scatter-gather at 1/2/4 simulated nodes.
#
#   scripts/bench_cluster.sh [duration]   full run; writes BENCH_cluster.{txt,json}
#   scripts/bench_cluster.sh smoke        1-node tripwire, ~2s, no artifacts
#
# Each fleet is n `swatd -streams` processes on loopback plus one
# `swatload -cluster` driver. All processes time-share the same host
# ("simulated nodes"), so the *wall-clock* rate cannot exceed one
# machine's throughput no matter the fleet size. Aggregate fleet
# capacity is therefore computed by time division, the standard
# single-host method: a sharded fleet saturates when its busiest node
# saturates, so
#
#   capacity(n) = R1 / max_share(n)
#
# where R1 is the measured single-node saturation rate and max_share is
# the largest fraction of the sharded load any node received (measured
# from each node's own ingest accounting, not assumed from the ring).
# Perfect balance gives capacity(n) = n × R1; ring skew shows up
# directly as lost capacity. Scatter-gather latency (PointAll, RollUp)
# is measured live per fleet.
set -euo pipefail

cd "$(dirname "$0")/.."

DURATION="${1:-5s}"
SMOKE=0
if [ "$DURATION" = "smoke" ]; then
    SMOKE=1
    DURATION=1s
fi

CONNS=4
STREAMS=64   # per worker: 256 named streams total, enough to wash out
             # per-key sampling noise in the load split
BATCH=256
WINDOW=1024
VNODES=512   # tighter arc-length spread than the library default
BASE_PORT=7481

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/swatd" ./cmd/swatd
go build -o "$WORK/swatload" ./cmd/swatload

# start_fleet <n>: launches n stream-mode nodes, waits for each port.
start_fleet() {
    local n="$1" port
    PIDS=()
    for i in $(seq 0 $((n - 1))); do
        port=$((BASE_PORT + i))
        "$WORK/swatd" -addr "127.0.0.1:$port" -window "$WINDOW" -streams \
            >"$WORK/swatd-$n-$i.log" 2>&1 &
        PIDS+=($!)
    done
    for i in $(seq 0 $((n - 1))); do
        port=$((BASE_PORT + i))
        for _ in $(seq 1 50); do
            if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then
                exec 3>&- 3<&-
                continue 2
            fi
            sleep 0.1
        done
        echo "bench_cluster: node on port $port never came up" >&2
        exit 1
    done
}

stop_fleet() {
    for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    PIDS=()
}

# run_fleet <n>: drives the fleet, leaving swatload's JSON in $WORK.
run_fleet() {
    local n="$1" addrs="127.0.0.1:$BASE_PORT"
    for i in $(seq 1 $((n - 1))); do
        addrs="$addrs,127.0.0.1:$((BASE_PORT + i))"
    done
    start_fleet "$n"
    "$WORK/swatload" -cluster "$addrs" -conns "$CONNS" -streams "$STREAMS" \
        -batch "$BATCH" -duration "$DURATION" -window "$WINDOW" \
        -vnodes "$VNODES" -json >"$WORK/fleet-$n.json"
    stop_fleet
}

# jget <file> <key>: first numeric value of a top-level JSON key (our
# own indented MarshalIndent output, one key per line).
jget() {
    awk -v k="\"$2\":" '$1 == k { gsub(/,/, "", $2); print $2; exit }' "$1"
}

# max_share <file>: the largest per-node load share.
max_share() {
    awk -v k='"share":' '$1 == k { gsub(/,/, "", $2); if ($2 > m) m = $2 } END { print m }' "$1"
}

if [ "$SMOKE" = 1 ]; then
    run_fleet 1
    rate="$(jget "$WORK/fleet-1.json" values_per_sec)"
    echo "bench_cluster smoke: 1 node, $rate values/s"
    exit 0
fi

for n in 1 2 4; do
    echo "bench_cluster: fleet of $n, $DURATION ..."
    run_fleet "$n"
done

R1="$(jget "$WORK/fleet-1.json" values_per_sec)"

{
    echo "["
    first=1
    for n in 1 2 4; do
        f="$WORK/fleet-$n.json"
        share="$(max_share "$f")"
        [ "$first" = 1 ] || echo ","
        first=0
        awk -v n="$n" -v r1="$R1" -v share="$share" \
            -v rate="$(jget "$f" values_per_sec)" \
            -v pa="$(jget "$f" pointall_ms)" -v ru="$(jget "$f" rollup_ms)" \
            'BEGIN {
                cap = r1 / share
                printf "  {\"nodes\": %d, \"measured_values_per_sec\": %.0f, \"max_share\": %.4f,\n", n, rate, share
                printf "   \"aggregate_capacity_values_per_sec\": %.0f, \"speedup_vs_one\": %.2f,\n", cap, cap / r1
                printf "   \"pointall_ms\": %.2f, \"rollup_ms\": %.2f}", pa, ru
            }'
    done
    echo ""
    echo "]"
} >BENCH_cluster.json.tmp
mv BENCH_cluster.json.tmp BENCH_cluster.json

{
    echo "bench_cluster: $DURATION per fleet, $CONNS workers x $STREAMS streams, batch $BATCH, vnodes $VNODES"
    echo
    echo "Aggregate capacity is computed by time division (all nodes share"
    echo "one host): capacity(n) = R1 / max_share(n), with R1 the measured"
    echo "single-node saturation rate and max_share the busiest node's"
    echo "measured fraction of the sharded load. See scripts/bench_cluster.sh."
    echo
    printf "%-6s %-18s %-10s %-22s %-9s %-12s %-10s\n" \
        nodes "measured values/s" max-share "aggregate capacity/s" speedup "PointAll ms" "RollUp ms"
    for n in 1 2 4; do
        f="$WORK/fleet-$n.json"
        share="$(max_share "$f")"
        awk -v n="$n" -v r1="$R1" -v share="$share" \
            -v rate="$(jget "$f" values_per_sec)" \
            -v pa="$(jget "$f" pointall_ms)" -v ru="$(jget "$f" rollup_ms)" \
            'BEGIN {
                printf "%-6d %-18.0f %-10.4f %-22.0f %-9.2f %-12.2f %-10.2f\n",
                    n, rate, share, r1 / share, 1 / share, pa, ru
            }'
    done
} >BENCH_cluster.txt.tmp
mv BENCH_cluster.txt.tmp BENCH_cluster.txt

cat BENCH_cluster.txt
echo "wrote BENCH_cluster.txt and BENCH_cluster.json"

# The acceptance bar: a 4-node fleet must offer at least 3x one node.
awk -v share="$(max_share "$WORK/fleet-4.json")" 'BEGIN {
    if (1 / share < 3) {
        printf "bench_cluster: 4-node speedup %.2f is under 3x — ring balance regressed\n", 1 / share
        exit 1
    }
}'
