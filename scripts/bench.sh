#!/usr/bin/env bash
# Run the hot-path micro-benchmarks with allocation reporting and emit a
# machine-readable snapshot next to the repo root.
#
#   scripts/bench.sh [count]
#
# count defaults to 6 runs per benchmark (pass 1 for a quick smoke run).
# Raw `go test -bench` output is written to BENCH_hotpath.txt and a JSON
# digest — one object per benchmark run with ns/op, B/op, allocs/op — to
# BENCH_hotpath.json, for diffing against a previous checkout.
set -euo pipefail

cd "$(dirname "$0")/.."

COUNT="${1:-6}"
BENCHES='BenchmarkTreeUpdate$|BenchmarkTreeUpdateBatch|BenchmarkTreePointQuery|BenchmarkTreeInnerProduct|BenchmarkMonitorIngest'
RAW=BENCH_hotpath.txt
OUT=BENCH_hotpath.json

# Capture to temporaries first so a failed run leaves any previous
# snapshot untouched.
go test -run '^$' -bench "$BENCHES" -benchmem -count="$COUNT" . | tee "$RAW.tmp"
mv "$RAW.tmp" "$RAW"

awk '
BEGIN { print "[" }
/^Benchmark/ {
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", $1, $2, ns
    if (bytes != "") printf ", \"bytes_per_op\": %s, \"allocs_per_op\": %s", bytes, allocs
    printf "}"
}
END { print "\n]" }
' "$RAW" > "$OUT.tmp"
mv "$OUT.tmp" "$OUT"

echo "wrote $RAW and $OUT"
