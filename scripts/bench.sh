#!/usr/bin/env bash
# Run the micro-benchmarks with allocation reporting and emit
# machine-readable snapshots next to the repo root.
#
#   scripts/bench.sh [count] [stage]
#
# count defaults to 6 runs per benchmark (pass 1 for a quick smoke run).
# stage selects which suites run: "hotpath", "query", "wire", "merge",
# or "all" (default).
#
# Each stage writes two artifacts:
#   BENCH_<stage>.txt   raw `go test -bench` output — benchstat input;
#                       compare checkouts with
#                         benchstat old/BENCH_query.txt BENCH_query.txt
#   BENCH_<stage>.json  one object per benchmark run with ns/op, B/op,
#                       allocs/op, plus any reported throughput/latency
#                       metrics (msgs/s, values/s, p99-us), for
#                       scripted diffing.
set -euo pipefail

cd "$(dirname "$0")/.."

COUNT="${1:-6}"
STAGE="${2:-all}"

HOTPATH_BENCHES='BenchmarkTreeUpdate$|BenchmarkTreeUpdateBatch|BenchmarkTreePointQuery|BenchmarkTreeInnerProduct|BenchmarkMonitorIngest'
QUERY_BENCHES='BenchmarkQueryAdhoc|BenchmarkQueryPlan|BenchmarkAnswerBatch|BenchmarkHistogramQuery|BenchmarkMonitorQueryAll'
WIRE_BENCHES='BenchmarkWireV1Ingest|BenchmarkWireV2Ingest16|BenchmarkWireV2Ingest256|BenchmarkWireV2IngestLatency|BenchmarkWireV2QueryBatch'
MERGE_BENCHES='BenchmarkTreeMerge|BenchmarkSummaryEncode|BenchmarkSummaryDecode'

# run_stage <name> <bench regexp>: runs the suite, tees raw benchstat-
# compatible text to BENCH_<name>.txt and digests it into BENCH_<name>.json.
# Capture goes to temporaries first so a failed run leaves any previous
# snapshot untouched.
run_stage() {
    local name="$1" benches="$2"
    local raw="BENCH_${name}.txt" out="BENCH_${name}.json"

    go test -run '^$' -bench "$benches" -benchmem -count="$COUNT" . | tee "$raw.tmp"
    mv "$raw.tmp" "$raw"

    awk '
    BEGIN { print "[" }
    /^Benchmark/ {
        ns = ""; bytes = ""; allocs = ""; msgs = ""; values = ""; p99 = ""
        for (i = 2; i < NF; i++) {
            if ($(i+1) == "ns/op") ns = $i
            if ($(i+1) == "B/op") bytes = $i
            if ($(i+1) == "allocs/op") allocs = $i
            if ($(i+1) == "msgs/s") msgs = $i
            if ($(i+1) == "values/s") values = $i
            if ($(i+1) == "p99-us") p99 = $i
        }
        if (ns == "") next
        if (n++) printf ",\n"
        printf "  {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", $1, $2, ns
        if (bytes != "") printf ", \"bytes_per_op\": %s, \"allocs_per_op\": %s", bytes, allocs
        if (msgs != "") printf ", \"msgs_per_sec\": %s", msgs
        if (values != "") printf ", \"values_per_sec\": %s", values
        if (p99 != "") printf ", \"p99_us\": %s", p99
        printf "}"
    }
    END { print "\n]" }
    ' "$raw" > "$out.tmp"
    mv "$out.tmp" "$out"

    echo "wrote $raw and $out"
}

case "$STAGE" in
hotpath) run_stage hotpath "$HOTPATH_BENCHES" ;;
query) run_stage query "$QUERY_BENCHES" ;;
wire) run_stage wire "$WIRE_BENCHES" ;;
merge) run_stage merge "$MERGE_BENCHES" ;;
all)
    run_stage hotpath "$HOTPATH_BENCHES"
    run_stage query "$QUERY_BENCHES"
    run_stage wire "$WIRE_BENCHES"
    run_stage merge "$MERGE_BENCHES"
    ;;
*)
    echo "unknown stage: $STAGE (want hotpath, query, wire, merge, or all)" >&2
    exit 2
    ;;
esac
